"""Deterministic network chaos: seeded faults between client and server.

``repro.faults`` attacks the simulated hardware and ``repro.svc.chaos``
attacks the process and its filesystem; this module attacks the
*network*.  A :class:`NetChaosSchedule` is a seeded description of how
hostile the wire is — added latency, throttled partial writes, mid-body
connection resets, slowloris drip-feeds, and outright connection drops —
and every decision is a pure function of ``(seed, connection index)``,
so a failing soak run replays exactly from its seed (the same pattern as
``FaultSchedule``).

Two consumption modes:

* **TCP proxy** — :class:`ChaosProxy` listens on its own port and
  forwards each accepted connection to the upstream server through the
  connection's :class:`ConnPlan`.  The soak harness
  (``scripts/soak_smoke.py``, ``tests/test_soak.py``) puts it between
  ``repro-sim loadgen`` and ``repro-sim serve``.
* **In-process** — :func:`paced_write` applies a plan's drip/throttle
  behaviour to any ``asyncio.StreamWriter``; ``repro.loadgen`` uses it
  for client-side slowloris without a proxy hop.

Determinism contract: ``plan_for(i)`` depends only on the schedule's
fields, never on wall time or accept order, so for a run that opens N
connections the *set* of injected faults is identical across reruns even
when the accept interleaving differs (``tests/test_netchaos.py`` pins
this).  The module is allowlisted for wall-clock reads like the rest of
``repro.svc`` — pacing sleeps are orchestration time, a layer above the
simulator, and never touch simulation results.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "ConnPlan",
    "NetChaosSchedule",
    "ChaosProxy",
    "paced_write",
    "load_schedule",
]


@dataclass(frozen=True)
class ConnPlan:
    """The concrete fault plan for one connection (derived, not chosen)."""

    #: Accept-order index the plan was derived for.
    index: int
    #: Close the connection immediately on accept, before any bytes.
    drop: bool = False
    #: Added one-way latency before the first forwarded byte, each way.
    latency_ms: float = 0.0
    #: Abort the connection after forwarding this many server→client
    #: bytes (a mid-body reset).  None: never.
    reset_after_bytes: Optional[int] = None
    #: Pace server→client forwarding at this rate.  None: unthrottled.
    throttle_bytes_per_s: Optional[float] = None
    #: Forwarding chunk size while throttled.
    chunk_bytes: int = 65536
    #: Slowloris drip: forward client→server this many bytes at a time...
    drip_chunk_bytes: int = 0
    #: ...sleeping this long between chunks (0 disables the drip).
    drip_delay_ms: float = 0.0

    @property
    def is_null(self) -> bool:
        return (
            not self.drop
            and self.latency_ms == 0.0
            and self.reset_after_bytes is None
            and self.throttle_bytes_per_s is None
            and self.drip_chunk_bytes == 0
        )

    @property
    def kind(self) -> str:
        """The plan's dominant fault class (one label per connection)."""
        if self.drop:
            return "drop"
        if self.reset_after_bytes is not None:
            return "reset"
        if self.drip_chunk_bytes > 0:
            return "slowloris"
        if self.throttle_bytes_per_s is not None:
            return "throttle"
        if self.latency_ms > 0.0:
            return "latency"
        return "clean"


@dataclass(frozen=True)
class NetChaosSchedule:
    """A seeded recipe turning connection indexes into :class:`ConnPlan`\\ s.

    Fault classes are drawn exclusively, in priority order drop > reset >
    slowloris > throttle, from one seeded stream per connection; latency
    (base + jitter) applies to every non-dropped connection.  Fractions
    are probabilities in ``[0, 1]``.
    """

    seed: int = 0
    drop_fraction: float = 0.0
    reset_fraction: float = 0.0
    slowloris_fraction: float = 0.0
    throttle_fraction: float = 0.0
    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    reset_after_bytes: int = 256
    throttle_bytes_per_s: float = 8192.0
    chunk_bytes: int = 1024
    drip_chunk_bytes: int = 16
    drip_delay_ms: float = 25.0

    def __post_init__(self) -> None:
        for name in ("drop_fraction", "reset_fraction",
                     "slowloris_fraction", "throttle_fraction"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = (self.drop_fraction + self.reset_fraction
                 + self.slowloris_fraction + self.throttle_fraction)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault fractions sum to {total:.3f} > 1; they are "
                "exclusive classes of one draw"
            )
        for name in ("latency_ms", "jitter_ms", "drip_delay_ms"):
            if float(getattr(self, name)) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("reset_after_bytes", "chunk_bytes", "drip_chunk_bytes"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.throttle_bytes_per_s <= 0.0:
            raise ValueError("throttle_bytes_per_s must be > 0")

    @property
    def is_null(self) -> bool:
        return (
            self.drop_fraction == 0.0
            and self.reset_fraction == 0.0
            and self.slowloris_fraction == 0.0
            and self.throttle_fraction == 0.0
            and self.latency_ms == 0.0
            and self.jitter_ms == 0.0
        )

    def plan_for(self, index: int) -> ConnPlan:
        """The deterministic plan for connection ``index`` (accept order).

        Pure in ``(schedule fields, index)``: string seeding keeps the
        derivation stable across processes and platforms (CPython hashes
        str seeds with sha512, not the randomized ``hash()``).
        """
        rng = random.Random(f"netchaos:{self.seed}:{index}")
        draw = rng.random()
        jitter = rng.random() * self.jitter_ms
        latency_ms = self.latency_ms + jitter
        edge = self.drop_fraction
        if draw < edge:
            return ConnPlan(index=index, drop=True)
        edge += self.reset_fraction
        if draw < edge:
            return ConnPlan(
                index=index, latency_ms=latency_ms,
                reset_after_bytes=self.reset_after_bytes,
                chunk_bytes=self.chunk_bytes,
            )
        edge += self.slowloris_fraction
        if draw < edge:
            return ConnPlan(
                index=index, latency_ms=latency_ms,
                drip_chunk_bytes=self.drip_chunk_bytes,
                drip_delay_ms=self.drip_delay_ms,
            )
        edge += self.throttle_fraction
        if draw < edge:
            return ConnPlan(
                index=index, latency_ms=latency_ms,
                throttle_bytes_per_s=self.throttle_bytes_per_s,
                chunk_bytes=self.chunk_bytes,
            )
        return ConnPlan(index=index, latency_ms=latency_ms)

    def plan_counts(self, connections: int) -> Dict[str, int]:
        """Fault-class counts over the first ``connections`` plans — the
        reproducibility fingerprint soak runs compare across reruns."""
        counts: Dict[str, int] = {}
        for index in range(connections):
            kind = self.plan_for(index).kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Any) -> "NetChaosSchedule":
        if not isinstance(data, dict):
            raise ValueError(
                f"netchaos schedule must be a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown netchaos field(s) {', '.join(unknown)}; valid: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**data)


def load_schedule(path: str) -> NetChaosSchedule:
    """A :class:`NetChaosSchedule` from a JSON file (the ``--chaos``
    flag of ``repro-sim loadgen`` and the soak harness)."""
    with open(path) as handle:
        return NetChaosSchedule.from_dict(json.load(handle))


async def paced_write(
    writer: asyncio.StreamWriter,
    data: bytes,
    chunk_bytes: int,
    delay_s: float,
    timeout_s: float = 30.0,
) -> None:
    """Write ``data`` in ``chunk_bytes`` pieces with ``delay_s`` between
    them — the drip/throttle primitive shared by the proxy and the
    in-process (loadgen slowloris) path.  Each drain carries a deadline
    so a peer that stops reading cannot park the writer forever."""
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    for offset in range(0, len(data), chunk_bytes):
        writer.write(data[offset:offset + chunk_bytes])
        await asyncio.wait_for(writer.drain(), timeout_s)
        if delay_s > 0.0 and offset + chunk_bytes < len(data):
            await asyncio.sleep(delay_s)


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one upstream server.

    Accepted connections are numbered in accept order; connection ``i``
    behaves per ``schedule.plan_for(i)``.  ``counters`` tallies what was
    actually injected, and ``open_connections`` must return to zero once
    traffic ends — the soak harness asserts both.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: NetChaosSchedule,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.schedule = schedule
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._next_index = 0
        self._conn_tasks: Set["asyncio.Task[Any]"] = set()
        self.open_connections = 0
        self.counters: Dict[str, int] = {
            "connections": 0, "dropped": 0, "reset": 0, "slowloris": 0,
            "throttled": 0, "clean": 0, "latency": 0, "upstream_failed": 0,
            "closed": 0, "client_bytes": 0, "server_bytes": 0,
        }

    @property
    def bound_port(self) -> int:
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def _handle(
        self, client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        index = self._next_index
        self._next_index += 1
        plan = self.schedule.plan_for(index)
        self.counters["connections"] += 1
        kind_counter = {
            "drop": "dropped", "reset": "reset", "slowloris": "slowloris",
            "throttle": "throttled", "latency": "latency", "clean": "clean",
        }[plan.kind]
        self.counters[kind_counter] += 1
        self.open_connections += 1
        # The connection body runs in the same task start_server spawned;
        # track it so stop() can cancel in-flight pumps.
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        upstream_writer: Optional[asyncio.StreamWriter] = None
        try:
            if plan.drop:
                _abort(client_writer)
                return
            if plan.latency_ms > 0.0:
                await asyncio.sleep(plan.latency_ms / 1000.0)
            try:
                upstream_reader, upstream_writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.upstream_host, self.upstream_port
                    ),
                    timeout=10.0,
                )
            except (OSError, asyncio.TimeoutError):
                self.counters["upstream_failed"] += 1
                _abort(client_writer)
                return
            up = asyncio.ensure_future(self._pump_up(
                client_reader, upstream_writer, plan
            ))
            down = asyncio.ensure_future(self._pump_down(
                upstream_reader, client_writer, plan
            ))
            done, pending = await asyncio.wait(
                {up, down}, return_when=asyncio.FIRST_COMPLETED
            )
            reset = any(
                not t.cancelled() and t.exception() is None
                and t.result() == "reset" for t in done
            )
            for t in pending:
                # A finished direction ends the whole connection: HTTP/1.1
                # with Connection: close has no half-open use, and a reset
                # must kill the opposite pump immediately.
                t.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            for t in done:
                # Consume exceptions (broken pipes etc.) so nothing leaks
                # to the loop's exception handler.
                if not t.cancelled():
                    t.exception()
            if reset:
                _abort(client_writer)
        except asyncio.CancelledError:
            raise
        finally:
            if upstream_writer is not None:
                _abort(upstream_writer)
            await _close(client_writer)
            self.open_connections -= 1
            self.counters["closed"] += 1

    async def _pump_up(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        plan: ConnPlan,
    ) -> str:
        """client → server, optionally slowloris-dripped."""
        while True:
            chunk = await asyncio.wait_for(reader.read(65536), 600.0)
            if not chunk:
                return "eof"
            self.counters["client_bytes"] += len(chunk)
            if plan.drip_chunk_bytes > 0:
                await paced_write(
                    writer, chunk, plan.drip_chunk_bytes,
                    plan.drip_delay_ms / 1000.0,
                )
            else:
                writer.write(chunk)
                await asyncio.wait_for(writer.drain(), 600.0)

    async def _pump_down(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        plan: ConnPlan,
    ) -> str:
        """server → client: throttling and mid-body resets live here."""
        forwarded = 0
        while True:
            budget = 65536
            if plan.reset_after_bytes is not None:
                budget = min(budget, plan.reset_after_bytes - forwarded)
                if budget <= 0:
                    return "reset"
            chunk = await asyncio.wait_for(reader.read(budget), 600.0)
            if not chunk:
                return "eof"
            forwarded += len(chunk)
            self.counters["server_bytes"] += len(chunk)
            if plan.throttle_bytes_per_s is not None:
                delay_s = plan.chunk_bytes / plan.throttle_bytes_per_s
                await paced_write(
                    writer, chunk, plan.chunk_bytes, delay_s
                )
            else:
                writer.write(chunk)
                await asyncio.wait_for(writer.drain(), 600.0)
            if (plan.reset_after_bytes is not None
                    and forwarded >= plan.reset_after_bytes):
                return "reset"


def _abort(writer: asyncio.StreamWriter) -> None:
    """RST-style teardown: no FIN handshake, no lingering buffers."""
    transport = writer.transport
    if isinstance(transport, asyncio.WriteTransport):
        transport.abort()


async def _close(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


def describe(schedule: NetChaosSchedule, connections: int) -> List[Tuple[int, str]]:
    """``(index, kind)`` for the first ``connections`` plans — a compact,
    human-auditable view of what a seed will do."""
    return [
        (index, schedule.plan_for(index).kind)
        for index in range(connections)
    ]

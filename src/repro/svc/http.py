"""A minimal HTTP/1.1 JSON front end over :class:`SimulationService`.

The container ships no async HTTP framework, so this is a deliberately
small hand-rolled server on :func:`asyncio.start_server`: request line +
headers + ``Content-Length`` body, JSON in, JSON out, one request per
connection (``Connection: close``).  That is all the surface the service
needs, and it keeps the robustness story auditable end to end.

Routes (all JSON):

``GET /v1/healthz``
    ``200 {"ok": true}`` — or ``503`` once draining.
``GET /v1/status``
    Breaker, admission, pool, and store status.
``GET /v1/metrics``
    The full :class:`repro.obs.MetricsRegistry` export.
``GET /v1/store``
    Store stats alone (hit ratio, residency, evictions).
``GET /v1/results/<config-hash>``
    The stored record, or ``404`` on a miss (never triggers compute).
``POST /v1/cells``
    Body: a cell spec.  ``200`` with ``{"served": "store"|"computed"|
    "coalesced", "record": ...}``; ``400`` bad spec; ``429``/``503``
    backpressure (with ``Retry-After``); ``504`` request timeout;
    ``500`` with the failure record when the cell itself failed.
``POST /v1/sweeps``
    Body: ``{"cells": [spec, ...]}``.  One entry per cell plus bundle
    stats (hits/computed/coalesced and the store hit ratio).
``GET /v1/events?since=N``
    Chunked JSONL stream of service progress events.

``serve_forever`` wires SIGINT/SIGTERM to a graceful drain and returns
the runner's resumable exit codes (75 interrupted / 76 deadline).
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.svc.service import (
    Overloaded,
    RequestTimedOut,
    ServiceConfig,
    SimulationService,
    SpecError,
    cell_from_spec,
)

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


def _response_bytes(
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one request: ``(method, path, headers, body)``."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "headers too large") from None
    except (asyncio.IncompleteReadError, ConnectionError):
        raise _HttpError(400, "truncated request") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body too large ({length} bytes)")
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            raise _HttpError(400, "truncated body") from None
    return method, path, headers, body


def _parse_json_body(body: bytes) -> Any:
    if not body:
        raise _HttpError(400, "a JSON body is required")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, f"invalid JSON body: {exc}") from None


class ServiceServer:
    """The asyncio server wrapping one :class:`SimulationService`."""

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 8642) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actual port (useful when constructed with port 0)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        if not self.service.started:
            await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers, body = await _read_request(reader)
            except _HttpError as exc:
                writer.write(_response_bytes(
                    exc.status, {"error": exc.message}, exc.headers
                ))
                await writer.drain()
                return
            if path.startswith("/v1/events"):
                await self._stream_events(writer, path)
                return
            try:
                status, payload, extra = await self._dispatch(
                    method, path, body
                )
            except _HttpError as exc:
                status, payload, extra = (
                    exc.status, {"error": exc.message}, exc.headers
                )
            writer.write(_response_bytes(status, payload, extra))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        service = self.service
        if path == "/v1/healthz" and method == "GET":
            if service.draining:
                return 503, {"ok": False, "draining": True}, None
            return 200, {"ok": True, "resident": len(service.store)}, None
        if path == "/v1/status" and method == "GET":
            return 200, service.status(), None
        if path == "/v1/metrics" and method == "GET":
            return 200, service.metrics.to_dict(), None
        if path == "/v1/store" and method == "GET":
            return 200, service.store.stats(), None
        if path.startswith("/v1/results/") and method == "GET":
            config_hash = path[len("/v1/results/"):]
            # Same deliberate on-loop store read as run_cell: one small
            # json.load, and on-loop serialization is the store's only
            # concurrency control (see SimulationService.run_cell).
            record = service.store.get(config_hash)  # simlint: disable=SL010
            if record is None:
                return 404, {"error": f"no stored result for {config_hash}"}, None
            return 200, {"served": "store", "record": record}, None
        if path == "/v1/cells" and method == "POST":
            return await self._post_cell(_parse_json_body(body))
        if path == "/v1/sweeps" and method == "POST":
            return await self._post_sweep(_parse_json_body(body))
        if path in ("/v1/healthz", "/v1/status", "/v1/metrics", "/v1/store",
                    "/v1/cells", "/v1/sweeps"):
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"unknown path {path}")

    async def _post_cell(
        self, spec: Any
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        try:
            cell = cell_from_spec(spec)
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        try:
            record, served = await self.service.run_cell(cell)
        except Overloaded as exc:
            raise _HttpError(
                exc.status, exc.reason,
                {"Retry-After": str(max(1, round(exc.retry_after_s)))},
            ) from None
        except RequestTimedOut as exc:
            raise _HttpError(504, str(exc)) from None
        payload = {"served": served, "record": record}
        if record["status"] != "ok":
            return 500, payload, None
        return 200, payload, None

    async def _post_sweep(
        self, body: Any
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        if not isinstance(body, dict) or not isinstance(
            body.get("cells"), list
        ):
            raise _HttpError(
                400, 'sweep body must be {"cells": [spec, ...]}'
            )
        if not body["cells"]:
            raise _HttpError(400, "sweep needs at least one cell")
        try:
            cells = [cell_from_spec(spec) for spec in body["cells"]]
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        results = await self.service.run_cells(cells)
        entries: List[Dict[str, Any]] = []
        counts = {"store": 0, "computed": 0, "coalesced": 0,
                  "failed": 0, "rejected": 0, "timeout": 0}
        for cell, (record, served) in zip(cells, results):
            entry: Dict[str, Any] = {
                "cell_id": cell.cell_id,
                "hash": cell.config_hash,
                "served": served,
            }
            if record is None:
                counts["rejected" if served.startswith("rejected") else
                       "timeout"] += 1
            else:
                entry["status"] = record["status"]
                if record["status"] == "ok":
                    entry["digest"] = record["digest"]
                    counts[served] += 1
                else:
                    entry["failure"] = record.get("failure")
                    counts["failed"] += 1
            entries.append(entry)
        store = self.service.store
        payload = {
            "cells": entries,
            "counts": counts,
            "store": {"hit_ratio": round(store.hit_ratio, 6),
                      "hits": store.hits, "misses": store.misses},
        }
        return 200, payload, None

    async def _stream_events(
        self, writer: asyncio.StreamWriter, path: str
    ) -> None:
        """Chunked JSONL event stream; ends when the client goes away or
        the service finishes draining."""
        since = 0
        if "?" in path:
            for pair in path.split("?", 1)[1].split("&"):
                name, _, value = pair.partition("=")
                if name == "since":
                    try:
                        since = int(value)
                    except ValueError:
                        pass
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/jsonl\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            while True:
                events = await self.service.events_since(since, timeout_s=5.0)
                for event in events:
                    since = max(since, event["seq"])
                    line = (json.dumps(event, sort_keys=True) + "\n").encode()
                    writer.write(b"%x\r\n%s\r\n" % (len(line), line))
                await writer.drain()
                if self.service.draining and not events:
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def serve_async(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8642,
    deadline_s: Optional[float] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> int:
    """Run the service until SIGINT/SIGTERM (or ``deadline_s``); returns
    the process exit code (75 interrupted, 76 deadline)."""
    # Store recovery (log replay + shard scan) runs on the loop, but at
    # startup, before the listener exists — nothing to stall yet, and
    # recovering before accepting is what makes restart crash-safe.
    service = SimulationService(config, metrics=metrics)  # simlint: disable=SL010
    server = ServiceServer(service, host, port)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    reason = {"value": "signal"}

    def _on_signal() -> None:
        reason["value"] = "signal"
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        if deadline_s is not None:
            try:
                await asyncio.wait_for(stop.wait(), deadline_s)
            except asyncio.TimeoutError:
                reason["value"] = "deadline"
        else:
            await stop.wait()
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.stop()
    return await service.drain(reason["value"])


def serve_forever(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8642,
    deadline_s: Optional[float] = None,
) -> int:
    """Blocking entry point for ``repro-sim serve``."""
    return asyncio.run(serve_async(config, host, port, deadline_s))

"""A hardened HTTP/1.1 JSON front end over :class:`SimulationService`.

The container ships no async HTTP framework, so this is a deliberately
small hand-rolled server on :func:`asyncio.start_server`: request line +
headers + ``Content-Length`` body, JSON in, JSON out.  Connections close
after one request by default; a client sending ``Connection:
keep-alive`` may reuse the socket up to the configured per-connection
request cap.  That is all the surface the service needs, and it keeps
the robustness story auditable end to end.

The network is assumed **hostile** (docs/SERVICE.md, "Overload and
hostile networks").  Every byte and every second a client may cost the
server is bounded by a :class:`~repro.svc.limits.ProtocolLimits`:

- request line / header block over the limit → **431** (with hard
  ceilings no configuration can raise);
- declared or actual body over the limit → **413**;
- headers or body arriving slower than the per-phase deadline
  (slowloris, drip-fed bodies) → **408**;
- more open connections than ``max_connections`` → **503** +
  ``Retry-After`` at accept, before any parsing;
- compute requests (``POST /v1/cells``, ``/v1/sweeps``) beyond the
  priority lane (``max_connections - reserved_read_connections``) →
  **429**, so O(1) cached reads are never starved by compute traffic;
- per-peer token-bucket rate limiting (opt-in) → **429**;
- a ``/v1/events`` consumer that stops reading → bounded write buffer,
  drain deadline, then ``transport.abort()`` — a stalled reader cannot
  grow server memory.

Routes (all JSON):

``GET /v1/healthz``
    ``200 {"ok": true}`` — or ``503`` once draining.
``GET /v1/status``
    Breaker, admission, rate-limiter, pool, and store status.
``GET /v1/metrics``
    Content-negotiated: the full :class:`repro.obs.MetricsRegistry`
    JSON export by default (unchanged), or Prometheus text exposition
    when the request carries ``Accept: text/plain`` (or ``openmetrics``)
    or ``?format=prometheus``.
``GET /v1/trace``
    The merged service+simulation Perfetto timeline
    (:meth:`repro.obs.svc.ServiceTracer.chrome_trace`); ``404`` unless
    the service was started with tracing on.
``GET /v1/store``
    Store stats alone (hit ratio, residency, evictions).
``GET /v1/results/<config-hash>``
    The stored record, or ``404`` on a miss (never triggers compute).
``POST /v1/cells``
    Body: a cell spec.  ``200`` with ``{"served": "store"|"computed"|
    "coalesced", "record": ...}``; ``400`` bad spec; ``429``/``503``
    backpressure (with ``Retry-After``); ``504`` request timeout;
    ``500`` with the failure record when the cell itself failed.
``POST /v1/sweeps``
    Body: ``{"cells": [spec, ...]}``.  One entry per cell plus bundle
    stats (hits/computed/coalesced and the store hit ratio).
``GET /v1/events?since=N``
    Chunked JSONL stream of service progress events.  ``since`` is
    **exclusive**: events with ``seq`` strictly greater than N are
    returned, so resuming with the last ``seq`` you saw never repeats
    an event; ``since=0`` (the default) streams everything buffered.
    Every event names its originating request under ``corr_id``.  When
    the ring buffer overflowed past a consumer, a ``{"type": "gap",
    "missed": N}`` line is interposed (and ``svc.events.gaps``
    counted) — silent loss would defeat the stream's resume contract.

Every response carries ``X-Correlation-Id``: the request ID minted at
accept, threaded through the service layers and (for computed cells)
into the forked worker.  ``serve_forever`` wires SIGINT/SIGTERM to a
graceful drain and returns the runner's resumable exit codes (75
interrupted / 76 deadline).
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.logging import get_logger
from repro.obs.metrics import REQUEST_BUCKETS_MS
from repro.obs.prom import labeled, render_prometheus
from repro.obs.svc import SPAN_HTTP_PARSE, new_correlation_id
from repro.svc.limits import ProtocolLimits
from repro.svc.service import (
    Overloaded,
    RequestTimedOut,
    ServiceConfig,
    SimulationService,
    SpecError,
    cell_from_spec,
)

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry
    from repro.obs.svc import ServiceTracer

#: Prometheus text exposition format 0.0.4 (what ``promtool`` expects).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_log = get_logger("repro.svc.http")

#: Exact paths → route labels for the per-route latency histograms.
_ROUTE_LABELS = {
    "/v1/healthz": "healthz",
    "/v1/status": "status",
    "/v1/metrics": "metrics",
    "/v1/store": "store",
    "/v1/cells": "cells",
    "/v1/sweeps": "sweeps",
    "/v1/trace": "trace",
}

#: Routes that consume simulation capacity — the priority-lane cap and
#: the per-peer rate limiter apply to these only; reads always pass.
_COMPUTE_ROUTES = frozenset({"/v1/cells", "/v1/sweeps"})


def _route_label(path: str) -> str:
    """A bounded route label (never the raw path: config hashes and
    unknown paths would explode the metric's cardinality)."""
    path = path.partition("?")[0]
    if path.startswith("/v1/results/"):
        return "results"
    if path.startswith("/v1/events"):
        return "events"
    return _ROUTE_LABELS.get(path, "other")


def _parse_query(path: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    if "?" in path:
        for pair in path.split("?", 1)[1].split("&"):
            name, _, value = pair.partition("=")
            params[name] = value
    return params


def _wants_prometheus(query: Dict[str, str], accept: str) -> bool:
    """Content negotiation for ``/v1/metrics``: an explicit ``format``
    query parameter wins; otherwise the Accept header decides.  JSON
    stays the default so existing clients are untouched."""
    fmt = query.get("format")
    if fmt in ("prometheus", "prom", "text"):
        return True
    if fmt == "json":
        return False
    accept = accept.lower()
    return "text/plain" in accept or "openmetrics" in accept

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Protocol-limit statuses → the bounded ``reason`` label on the
#: ``svc.http.limited`` counter.
_LIMIT_REASONS = {408: "timeout", 413: "body", 431: "header"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class _ConnectionClosed(Exception):
    """The peer closed between requests — a clean end, not an error."""


class _TextBody:
    """Marker for a non-JSON response body (Prometheus exposition)."""

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


def _response_bytes(
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> bytes:
    if isinstance(payload, _TextBody):
        body = payload.text.encode()
        content_type = payload.content_type
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        content_type = "application/json"
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive" if keep_alive else "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


def _with_corr(
    extra: Optional[Dict[str, str]], corr_id: str
) -> Dict[str, str]:
    headers = dict(extra or {})
    headers.setdefault("X-Correlation-Id", corr_id)
    return headers


def _peer_of(writer: asyncio.StreamWriter) -> str:
    """The peer's address as a bounded string key (rate-limit bucket)."""
    peer = writer.get_extra_info("peername")
    if isinstance(peer, (tuple, list)) and peer:
        return str(peer[0])
    return str(peer) if peer else "unknown"


async def _read_request(
    reader: asyncio.StreamReader,
    limits: ProtocolLimits,
    header_timeout_s: Optional[float] = None,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one request: ``(method, path, headers, body)``.

    Every read phase carries a deadline and a size bound from
    ``limits`` — a hostile peer can neither out-wait nor out-buffer the
    server.  ``header_timeout_s`` overrides the header-phase deadline
    (the keep-alive loop passes the idle timeout between requests).
    Raises :class:`_ConnectionClosed` on a clean EOF before any bytes.
    """
    if header_timeout_s is None:
        header_timeout_s = limits.header_timeout_s
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), header_timeout_s
        )
    except asyncio.TimeoutError:
        raise _HttpError(
            408, f"timed out reading request headers "
            f"(limit {header_timeout_s:g}s)"
        ) from None
    except asyncio.LimitOverrunError:
        raise _HttpError(
            431, f"headers too large (limit {limits.max_header_bytes} bytes)"
        ) from None
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        partial = getattr(exc, "partial", b"")
        if not partial:
            raise _ConnectionClosed() from None
        raise _HttpError(400, "truncated request") from None
    if len(head) > limits.max_header_bytes:
        raise _HttpError(
            431, f"headers too large (limit {limits.max_header_bytes} bytes)"
        )
    lines = head.decode("latin-1").split("\r\n")
    if len(lines[0]) > limits.max_request_line_bytes:
        raise _HttpError(
            431, f"request line too large "
            f"(limit {limits.max_request_line_bytes} bytes)"
        )
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        # The service speaks Content-Length only; accepting a framing we
        # do not parse would desynchronize the connection (request
        # smuggling shape), so refuse it outright.
        raise _HttpError(
            400, "Transfer-Encoding is not supported; use Content-Length"
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > limits.max_body_bytes:
            raise _HttpError(
                413, f"body too large ({length} bytes; "
                f"limit {limits.max_body_bytes})"
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), limits.body_timeout_s
            )
        except asyncio.TimeoutError:
            raise _HttpError(
                408, f"timed out reading request body "
                f"(limit {limits.body_timeout_s:g}s)"
            ) from None
        except (asyncio.IncompleteReadError, ConnectionError):
            raise _HttpError(400, "truncated body") from None
    return method, path, headers, body


def _parse_json_body(body: bytes) -> Any:
    if not body:
        raise _HttpError(400, "a JSON body is required")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, f"invalid JSON body: {exc}") from None


class ServiceServer:
    """The asyncio server wrapping one :class:`SimulationService`."""

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 8642,
                 limits: Optional[ProtocolLimits] = None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.limits = limits if limits is not None else service.config.limits
        self._server: Optional[asyncio.AbstractServer] = None
        #: Live sockets, counted at accept and released in the handler's
        #: ``finally`` — the 503 connection cap and its gauge.
        self.open_connections = 0
        #: Compute requests currently being served (the priority lane).
        self.compute_in_flight = 0

    @property
    def bound_port(self) -> int:
        """The actual port (useful when constructed with port 0)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        if not self.service.started:
            await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            # The stream buffer bound: readuntil overruns past it raise
            # (→ 431) instead of buffering an unbounded header block.
            limit=self.limits.max_header_bytes,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    def _observe_http(self, path: str, status: int, started: float) -> None:
        self.service.metrics.histogram(
            labeled(
                "svc.http.request_ms",
                route=_route_label(path), code=str(status),
            ),
            REQUEST_BUCKETS_MS,
        ).observe((time.monotonic() - started) * 1000.0)

    def _count_limited(self, reason: str) -> None:
        self.service.metrics.inc(labeled("svc.http.limited", reason=reason))

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.service.metrics
        if self.open_connections >= self.limits.max_connections:
            # Refuse at accept, before reading a byte: parsing a request
            # we cannot serve would spend the very resource being
            # protected.
            self._count_limited("connections")
            try:
                writer.write(_response_bytes(
                    503,
                    {"error": f"connection limit reached "
                              f"({self.limits.max_connections})"},
                    _with_corr({"Retry-After": "1"}, new_correlation_id()),
                ))
                await asyncio.wait_for(writer.drain(), 5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            finally:
                await _close_writer(writer)
            return
        self.open_connections += 1
        metrics.gauge("svc.http.open_connections").set(
            float(self.open_connections)
        )
        try:
            served = 0
            while True:
                keep_alive = await self._handle_request(
                    reader, writer, request_index=served
                )
                served += 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await _close_writer(writer)
            self.open_connections -= 1
            metrics.gauge("svc.http.open_connections").set(
                float(self.open_connections)
            )

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        request_index: int,
    ) -> bool:
        """Serve one request; returns True to keep the connection open."""
        tracer = self.service.tracer
        corr_id = new_correlation_id()
        started = time.monotonic()
        limits = self.limits
        # Between keep-alive requests the clock is the idle timeout; a
        # quiet expiry there is the normal end of a reused connection,
        # not a protocol offence.
        header_timeout_s = (
            limits.header_timeout_s if request_index == 0
            else limits.keepalive_idle_s
        )
        parse_start = tracer.now_ms() if tracer is not None else 0.0
        try:
            method, path, headers, body = await _read_request(
                reader, limits, header_timeout_s
            )
        except _ConnectionClosed:
            return False
        except asyncio.TimeoutError:
            return False
        except _HttpError as exc:
            if exc.status == 408 and request_index > 0:
                return False  # idle keep-alive expiry: close silently
            if exc.status in _LIMIT_REASONS:
                self._count_limited(_LIMIT_REASONS[exc.status])
            try:
                writer.write(_response_bytes(
                    exc.status, {"error": exc.message},
                    _with_corr(exc.headers, corr_id),
                ))
                await asyncio.wait_for(writer.drain(), 5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            self._observe_http("", exc.status, started)
            return False  # framing may be lost; never reuse the socket
        if tracer is not None:
            tracer.add_span(
                SPAN_HTTP_PARSE, corr_id, parse_start,
                tracer.now_ms() - parse_start,
                method=method, path=path,
            )
        if path.startswith("/v1/events") and method == "GET":
            await self._stream_events(writer, path)
            return False
        # Keep-alive is opt-in (the client must ask) and capped.
        keep_alive = (
            headers.get("connection", "").lower() == "keep-alive"
            and request_index + 1 < self.limits.max_requests_per_connection
        )
        route = path.partition("?")[0]
        lane_claimed = False
        try:
            if method == "POST" and route in _COMPUTE_ROUTES:
                self._check_compute_request(writer, corr_id)
                self.compute_in_flight += 1
                lane_claimed = True
            try:
                status, payload, extra = await self._dispatch(
                    method, path, headers, body, corr_id
                )
            finally:
                if lane_claimed:
                    self.compute_in_flight -= 1
        except _HttpError as exc:
            status, payload, extra = (
                exc.status, {"error": exc.message}, exc.headers
            )
        writer.write(_response_bytes(
            status, payload, _with_corr(extra, corr_id),
            keep_alive=keep_alive,
        ))
        try:
            await asyncio.wait_for(writer.drain(), limits.body_timeout_s)
        except asyncio.TimeoutError:
            # The client stopped reading its own response: abort rather
            # than let close() linger flushing to a dead peer.
            self._count_limited("drain")
            transport = writer.transport
            if isinstance(transport, asyncio.WriteTransport):
                transport.abort()
            keep_alive = False
        self._observe_http(path, status, started)
        _log.info(
            "request", extra={
                "method": method, "path": path, "status": status,
                "corr_id": corr_id,
                "dur_ms": round((time.monotonic() - started) * 1000.0, 3),
            },
        )
        return keep_alive

    def _check_compute_request(
        self, writer: asyncio.StreamWriter, corr_id: str
    ) -> None:
        """Priority lane + per-peer rate limit for compute routes.

        Read routes never pass through here: however saturated the
        compute lane is, `/v1/results` and the health/metrics surface
        keep answering — the starvation-freedom half of overload
        control.
        """
        admitted, retry_after_s = self.service.rate_limiter.check(
            _peer_of(writer)
        )
        if not admitted:
            self._count_limited("rate")
            raise _HttpError(
                429, "per-client rate limit exceeded",
                {"Retry-After": str(max(1, round(retry_after_s)))},
            )
        if self.compute_in_flight >= self.limits.compute_connections:
            self._count_limited("lane")
            raise _HttpError(
                429,
                f"compute lane full "
                f"({self.limits.compute_connections} concurrent compute "
                "requests); cached reads are unaffected",
                {"Retry-After": "1"},
            )

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes,
        corr_id: str,
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        service = self.service
        route = path.partition("?")[0]
        if route == "/v1/healthz" and method == "GET":
            if service.draining:
                return 503, {"ok": False, "draining": True}, None
            return 200, {"ok": True, "resident": len(service.store)}, None
        if route == "/v1/status" and method == "GET":
            status = service.status()
            status["http"] = self.http_status()
            return 200, status, None
        if route == "/v1/metrics" and method == "GET":
            service.sample_gauges()
            if _wants_prometheus(_parse_query(path), headers.get("accept", "")):
                return 200, _TextBody(
                    render_prometheus(service.metrics), PROM_CONTENT_TYPE
                ), None
            return 200, service.metrics.to_dict(), None
        if route == "/v1/trace" and method == "GET":
            if service.tracer is None:
                return 404, {
                    "error": "tracing is off; start the service with --trace",
                }, None
            return 200, service.tracer.chrome_trace(stamp=True), None
        if route == "/v1/store" and method == "GET":
            return 200, service.store.stats(), None
        if route.startswith("/v1/results/") and method == "GET":
            config_hash = route[len("/v1/results/"):]
            # Same deliberate on-loop store read as run_cell: one small
            # json.load, and on-loop serialization is the store's only
            # concurrency control (see SimulationService.run_cell).
            record = service.store.get(config_hash)  # simlint: disable=SL010
            if record is None:
                return 404, {"error": f"no stored result for {config_hash}"}, None
            return 200, {"served": "store", "record": record}, None
        if route == "/v1/cells" and method == "POST":
            return await self._post_cell(_parse_json_body(body), corr_id)
        if route == "/v1/sweeps" and method == "POST":
            return await self._post_sweep(_parse_json_body(body), corr_id)
        if route in ("/v1/healthz", "/v1/status", "/v1/metrics", "/v1/store",
                     "/v1/cells", "/v1/sweeps", "/v1/trace"):
            raise _HttpError(405, f"{method} not allowed on {route}")
        raise _HttpError(404, f"unknown path {route}")

    def http_status(self) -> Dict[str, Any]:
        """The connection-layer view for ``/v1/status``."""
        limits = self.limits
        return {
            "open_connections": self.open_connections,
            "max_connections": limits.max_connections,
            "compute_in_flight": self.compute_in_flight,
            "compute_connections": limits.compute_connections,
            "limits": {
                "max_header_bytes": limits.max_header_bytes,
                "max_body_bytes": limits.max_body_bytes,
                "max_request_line_bytes": limits.max_request_line_bytes,
                "header_timeout_s": limits.header_timeout_s,
                "body_timeout_s": limits.body_timeout_s,
                "keepalive_idle_s": limits.keepalive_idle_s,
                "max_requests_per_connection":
                    limits.max_requests_per_connection,
            },
        }

    async def _post_cell(
        self, spec: Any, corr_id: str
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        try:
            cell = cell_from_spec(spec)
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        try:
            record, served = await self.service.run_cell(
                cell, corr_id=corr_id
            )
        except Overloaded as exc:
            raise _HttpError(
                exc.status, exc.reason,
                {"Retry-After": str(max(1, round(exc.retry_after_s)))},
            ) from None
        except RequestTimedOut as exc:
            raise _HttpError(504, str(exc)) from None
        payload = {"served": served, "record": record}
        if record["status"] != "ok":
            return 500, payload, None
        return 200, payload, None

    async def _post_sweep(
        self, body: Any, corr_id: str
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        if not isinstance(body, dict) or not isinstance(
            body.get("cells"), list
        ):
            raise _HttpError(
                400, 'sweep body must be {"cells": [spec, ...]}'
            )
        if not body["cells"]:
            raise _HttpError(400, "sweep needs at least one cell")
        try:
            cells = [cell_from_spec(spec) for spec in body["cells"]]
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        results = await self.service.run_cells(cells, corr_id=corr_id)
        entries: List[Dict[str, Any]] = []
        counts = {"store": 0, "computed": 0, "coalesced": 0,
                  "failed": 0, "rejected": 0, "timeout": 0}
        for cell, (record, served) in zip(cells, results):
            entry: Dict[str, Any] = {
                "cell_id": cell.cell_id,
                "hash": cell.config_hash,
                "served": served,
            }
            if record is None:
                counts["rejected" if served.startswith("rejected") else
                       "timeout"] += 1
            else:
                entry["status"] = record["status"]
                if record["status"] == "ok":
                    entry["digest"] = record["digest"]
                    counts[served] += 1
                else:
                    entry["failure"] = record.get("failure")
                    counts["failed"] += 1
            entries.append(entry)
        store = self.service.store
        payload = {
            "cells": entries,
            "counts": counts,
            "store": {"hit_ratio": round(store.hit_ratio, 6),
                      "hits": store.hits, "misses": store.misses},
        }
        return 200, payload, None

    async def _stream_events(
        self, writer: asyncio.StreamWriter, path: str
    ) -> None:
        """Chunked JSONL event stream; ends when the client goes away,
        stalls past the drain deadline, or the service finishes draining.

        ``since`` is exclusive: only events with ``seq`` strictly greater
        than it are sent, so a client that reconnects with the last seq it
        saw never receives a duplicate (pinned by
        ``tests/test_obs_svc.py::TestEventsSince``).

        Slow-consumer bounds: the transport's write buffer is capped at
        ``events_buffer_bytes`` so ``drain()`` blocks as soon as the
        client stops reading, the drain carries
        ``events_drain_timeout_s``, and expiry aborts the transport —
        the kernel socket buffer, not server heap, is the only backlog a
        stalled reader ever holds.  Ring-buffer overflow past a consumer
        is surfaced as an explicit gap line, never silent loss.
        """
        limits = self.limits
        metrics = self.service.metrics
        since = 0
        if "?" in path:
            for pair in path.split("?", 1)[1].split("&"):
                name, _, value = pair.partition("=")
                if name == "since":
                    try:
                        since = int(value)
                    except ValueError:
                        pass
        raw_transport = writer.transport
        transport: Optional[asyncio.WriteTransport] = (
            raw_transport
            if isinstance(raw_transport, asyncio.WriteTransport) else None
        )
        if transport is not None:
            transport.set_write_buffer_limits(high=limits.events_buffer_bytes)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/jsonl\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent_any = since > 0
        try:
            while True:
                events = await self.service.events_since(since, timeout_s=5.0)
                if events and sent_any and events[0]["seq"] > since + 1:
                    missed = events[0]["seq"] - since - 1
                    metrics.inc("svc.events.gaps", missed)
                    gap = (json.dumps(
                        {"type": "gap", "missed": missed}, sort_keys=True
                    ) + "\n").encode()
                    writer.write(b"%x\r\n%s\r\n" % (len(gap), gap))
                for event in events:
                    since = max(since, event["seq"])
                    sent_any = True
                    line = (json.dumps(event, sort_keys=True) + "\n").encode()
                    writer.write(b"%x\r\n%s\r\n" % (len(line), line))
                try:
                    await asyncio.wait_for(
                        writer.drain(), limits.events_drain_timeout_s
                    )
                except asyncio.TimeoutError:
                    # The consumer stopped reading: abort rather than
                    # buffer for it.  Reconnecting with its last seq
                    # resumes (or reports the gap) — losing the slowest
                    # reader beats losing the server.
                    metrics.inc("svc.events.stalled")
                    if transport is not None:
                        transport.abort()
                    return
                if self.service.draining and not events:
                    break
            writer.write(b"0\r\n\r\n")
            await asyncio.wait_for(
                writer.drain(), limits.events_drain_timeout_s
            )
        except (ConnectionError, asyncio.CancelledError, asyncio.TimeoutError):
            pass


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def serve_async(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8642,
    deadline_s: Optional[float] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> int:
    """Run the service until SIGINT/SIGTERM (or ``deadline_s``); returns
    the process exit code (75 interrupted, 76 deadline)."""
    # Store recovery (log replay + shard scan) runs on the loop, but at
    # startup, before the listener exists — nothing to stall yet, and
    # recovering before accepting is what makes restart crash-safe.
    service = SimulationService(config, metrics=metrics)  # simlint: disable=SL010
    server = ServiceServer(service, host, port)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    reason = {"value": "signal"}

    def _on_signal() -> None:
        reason["value"] = "signal"
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        if deadline_s is not None:
            try:
                await asyncio.wait_for(stop.wait(), deadline_s)
            except asyncio.TimeoutError:
                reason["value"] = "deadline"
        else:
            await stop.wait()
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.stop()
    exit_code = await service.drain(reason["value"])
    if service.tracer is not None and config.trace_out:
        # Post-drain: the listener is closed and every request finished,
        # so this one blocking write has nothing left to stall.
        _write_trace_artifact(service.tracer, config.trace_out)  # simlint: disable=SL010
    return exit_code


def _write_trace_artifact(tracer: "ServiceTracer", path: str) -> None:
    """Persist the merged service+simulation timeline on shutdown (the
    ``--trace-out`` artifact CI uploads)."""
    import os

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(tracer.chrome_trace(stamp=True), handle, sort_keys=True)
        handle.write("\n")


def serve_forever(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8642,
    deadline_s: Optional[float] = None,
) -> int:
    """Blocking entry point for ``repro-sim serve``."""
    return asyncio.run(serve_async(config, host, port, deadline_s))

"""``repro-sim top``: a live ops console over the service HTTP API.

Polls ``GET /v1/status`` and ``GET /v1/metrics`` (the JSON export) on an
interval and redraws a single terminal frame: breaker state, admission
occupancy, per-worker utilization, store hit ratio, request counters and
latency quantiles.  Read-only — it drives the same endpoints any
monitoring system would, so watching the console never perturbs the
service beyond two extra GETs per refresh.

:func:`render_top` is a pure function from the two JSON documents to the
frame text, which is what the tests exercise; :func:`run_top` owns the
polling loop, the ANSI screen clearing, and error display (a dead or
draining service renders as a status line, not a traceback).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

#: ANSI: cursor home + clear to end of screen (avoids full-screen flash).
_CLEAR = "\x1b[H\x1b[J"


def _fetch_json(host: str, port: int, path: str,
                timeout_s: float = 5.0) -> Dict[str, Any]:
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        payload = json.loads(response.read().decode())
    if not isinstance(payload, dict):
        raise ValueError(f"{path} returned non-object JSON")
    return payload


def _bar(fraction: float, width: int) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def _quantile(hist: Dict[str, Any], q: float) -> Optional[float]:
    """Estimate a quantile from the JSON histogram export by linear
    interpolation within the winning bucket (the usual Prometheus
    ``histogram_quantile`` construction), clamped to the exact recorded
    max — a wide sparse bucket can otherwise interpolate past it."""
    count = hist.get("count") or 0
    buckets = hist.get("buckets") or []
    if not count or not buckets:
        return None
    observed_max = hist.get("max")

    def clamp(estimate: Optional[float]) -> Optional[float]:
        if estimate is None or observed_max is None:
            return estimate
        return min(estimate, float(observed_max))

    rank = q * count
    cumulative = 0
    lower = 0.0
    for bucket in buckets:
        bucket_count = bucket.get("count", 0)
        upper = bucket.get("le")
        if upper == "+Inf":
            return observed_max
        cumulative += bucket_count
        if cumulative >= rank:
            if bucket_count == 0:
                return clamp(float(upper))
            inside = rank - (cumulative - bucket_count)
            return clamp(lower + (float(upper) - lower)
                         * (inside / bucket_count))
        lower = float(upper)
    return observed_max


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.1f}ms" if value < 1000 else f"{value / 1000.0:.2f}s"


def render_top(status: Dict[str, Any], metrics: Dict[str, Any],
               width: int = 80) -> str:
    """One console frame from ``/v1/status`` + ``/v1/metrics`` JSON."""
    bar_width = max(10, width - 46)
    lines: List[str] = []

    draining = status.get("draining", False)
    telemetry = status.get("telemetry", {})
    state = "DRAINING" if draining else "serving"
    tracing = "on" if telemetry.get("tracing") else "off"
    lines.append(
        f"service: {state}   tracing: {tracing}"
        f" ({telemetry.get('spans', 0)} spans)"
    )

    breaker = status.get("breaker", {})
    lines.append(
        f"breaker: {breaker.get('state', '?'):9s}"
        f" failures {breaker.get('consecutive_failures', 0)}"
        f"/{breaker.get('failure_threshold', '?')}"
        f"   retry-after {breaker.get('retry_after_s', 0)}s"
    )

    admission = status.get("admission", {})
    limit = admission.get("limit") or 1
    in_system = admission.get("in_system", 0)
    lines.append(
        f"admission: [{_bar(in_system / limit, bar_width)}]"
        f" {in_system}/{limit} in system"
        f"   admitted {admission.get('admitted', 0)}"
        f" rejected {admission.get('rejected', 0)}"
    )

    pool = status.get("pool", {})
    lines.append(
        f"pool: {pool.get('jobs', '?')} workers,"
        f" queue depth {pool.get('queue_depth', 0)}"
    )
    utilization = pool.get("utilization", {})
    for worker_id in sorted(utilization, key=str):
        fraction = float(utilization[worker_id])
        lines.append(
            f"  w{worker_id}: [{_bar(fraction, bar_width)}]"
            f" {fraction * 100.0:5.1f}% busy"
        )

    store = status.get("store", {})
    hit_ratio = float(store.get("hit_ratio", 0.0))
    resident = store.get("resident", 0)
    max_entries = store.get("max_entries")
    capacity = f"{resident}/{max_entries}" if max_entries else f"{resident}"
    lines.append(
        f"store: [{_bar(hit_ratio, bar_width)}]"
        f" {hit_ratio * 100.0:5.1f}% hits"
        f"   resident {capacity}"
        f"   evicted {store.get('evictions', 0)}"
        f" corrupt {store.get('corrupt', 0)}"
    )

    requests = status.get("requests", {})
    served: List[Tuple[str, int]] = sorted(
        (name[len("svc.requests_"):], value)
        for name, value in requests.items()
        if name.startswith("svc.requests_")
    )
    if served:
        lines.append(
            "requests: " + "  ".join(f"{k}={v}" for k, v in served)
        )

    histograms = metrics.get("histograms", {})
    request_ms = histograms.get("svc.request_ms")
    if isinstance(request_ms, dict) and request_ms.get("count"):
        lines.append(
            f"latency: n={request_ms['count']}"
            f" p50={_fmt_ms(_quantile(request_ms, 0.5))}"
            f" p95={_fmt_ms(_quantile(request_ms, 0.95))}"
            f" max={_fmt_ms(request_ms.get('max'))}"
        )
    fsync = histograms.get("svc.store.fsync_ms")
    if isinstance(fsync, dict) and fsync.get("count"):
        lines.append(
            f"store fsync: n={fsync['count']}"
            f" p95={_fmt_ms(_quantile(fsync, 0.95))}"
            f" max={_fmt_ms(fsync.get('max'))}"
        )
    return "\n".join(line[:width] for line in lines)


def run_top(host: str = "127.0.0.1", port: int = 8642,
            interval_s: float = 2.0, iterations: Optional[int] = None,
            width: int = 80) -> int:
    """Poll and redraw until interrupted (or for ``iterations`` frames —
    ``repro-sim top --once`` uses 1).  Returns a process exit code."""
    drawn = 0
    while iterations is None or drawn < iterations:
        try:
            status = _fetch_json(host, port, "/v1/status")
            metrics = _fetch_json(host, port, "/v1/metrics")
        except (urllib.error.URLError, ConnectionError, ValueError,
                TimeoutError) as exc:
            print(f"repro-sim top: {host}:{port} unreachable: {exc}")
            return 1
        frame = render_top(status, metrics, width=width)
        clear = _CLEAR if iterations is None or iterations > 1 else ""
        print(f"{clear}repro-sim top — {host}:{port}\n{frame}", flush=True)
        drawn += 1
        if iterations is not None and drawn >= iterations:
            break
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            break
    return 0

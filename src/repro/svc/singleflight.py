"""Single-flight request coalescing: N waiters, one computation.

Identical cells hash identically, so when several requests for the same
config hash arrive before the first completes, computing it N times is
pure waste — and would also record N journal entries for one logical
result.  A *flight* is the in-progress computation for one hash: the
first caller to :meth:`SingleFlight.join` becomes the **leader** (it
submits the cell to the pool); everyone else awaits the same future.

Waiter accounting makes cancellation safe: a waiter that times out calls
:meth:`SingleFlight.leave`, and only when the *last* waiter leaves does
the service cancel the underlying pool work — one impatient client never
yanks a result out from under the others.

Everything here runs on the service's event loop thread; no locks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass
class _Flight:
    future: "asyncio.Future[Any]"
    waiters: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


class SingleFlight:
    """In-flight computations keyed by config hash."""

    def __init__(self) -> None:
        self._flights: Dict[str, _Flight] = {}

    def __len__(self) -> int:
        return len(self._flights)

    def __contains__(self, key: str) -> bool:
        return key in self._flights

    def join(self, key: str) -> Tuple["asyncio.Future[Any]", bool]:
        """Join (or start) the flight for ``key``.

        Returns ``(future, leader)``: the leader is responsible for
        actually submitting the work; followers just await the future.
        """
        flight = self._flights.get(key)
        leader = flight is None
        if flight is None:
            flight = self._flights[key] = _Flight(
                future=asyncio.get_event_loop().create_future()
            )
        flight.waiters += 1
        return flight.future, leader

    def leave(self, key: str) -> int:
        """One waiter gave up; returns how many remain.

        When the last waiter leaves an unresolved flight, the flight is
        dropped — the caller should cancel the underlying work, and a
        later request for the same key starts fresh.
        """
        flight = self._flights.get(key)
        if flight is None:
            return 0
        flight.waiters -= 1
        if flight.waiters <= 0 and not flight.future.done():
            del self._flights[key]
            return 0
        return flight.waiters

    def resolve(self, key: str, record: Any) -> bool:
        """Deliver the terminal record to every waiter; True if a flight
        was actually waiting (False for e.g. a cancelled-then-completed
        race, which is benign)."""
        flight = self._flights.pop(key, None)
        if flight is None or flight.future.done():
            return False
        flight.future.set_result(record)
        return True

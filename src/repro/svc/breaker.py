"""Circuit breaker around the supervised worker pool.

Worker crashes and per-cell timeouts are the pool's *infrastructure*
failure modes (a sick machine, a poisoned environment).  When they come
consecutively, hammering more cells at the pool just burns respawns and
queues latency behind doomed work — so the service trips a breaker:

``closed``
    Normal operation.  ``failure_threshold`` *consecutive* crash/timeout
    records trip it open.  Deterministic in-cell exceptions do **not**
    count: the worker executed correctly; the cell itself is bad.
``open``
    Every request is rejected (HTTP 503 with Retry-After) without
    touching the pool.  After ``reset_timeout_s`` the next ``allow``
    transitions to half-open.
``half-open``
    Exactly one probe request is admitted.  Success closes the breaker;
    failure re-opens it for another full cooldown.  A probe that never
    reports (e.g. cancelled by its client) stops blocking new probes
    after another ``reset_timeout_s``.

The clock is injectable so tests drive the cooldown with a fake clock,
exactly like the pool's retry/backoff timing tests.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the state, for dashboards: higher is sicker.
_STATE_LEVEL = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Trip on consecutive pool failures; recover through half-open probes.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`:
    transitions are counted under ``svc.breaker.*`` and the current state
    is a gauge (0 closed, 1 half-open, 2 open).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self.metrics = metrics
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_started_at: Optional[float] = None
        self._set_gauge()

    def _set_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("svc.breaker.state").set(
                _STATE_LEVEL[self.state]
            )

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self.metrics is not None:
            self.metrics.inc(f"svc.breaker.to_{state.replace('-', '_')}")
        self._set_gauge()

    # -- decision surface --------------------------------------------------

    def allow(self) -> bool:
        """May one more request reach the pool right now?

        Called once per would-be dispatch; in half-open it *claims* the
        probe slot, so callers must follow through with a real request
        and eventually report its outcome.
        """
        now = self._clock()
        if self.state == OPEN:
            assert self._opened_at is not None
            if now - self._opened_at < self.reset_timeout_s:
                if self.metrics is not None:
                    self.metrics.inc("svc.breaker.rejected")
                return False
            self._transition(HALF_OPEN)
            self._probe_started_at = None
        if self.state == HALF_OPEN:
            if (
                self._probe_started_at is not None
                and now - self._probe_started_at < self.reset_timeout_s
            ):
                if self.metrics is not None:
                    self.metrics.inc("svc.breaker.rejected")
                return False  # a probe is already in flight
            self._probe_started_at = now
            return True
        return True

    @property
    def retry_after_s(self) -> float:
        """A client-facing hint: how long until a request might pass."""
        if self.state == OPEN and self._opened_at is not None:
            remaining = self.reset_timeout_s - (
                self._clock() - self._opened_at
            )
            return max(0.0, remaining)
        return self.reset_timeout_s if self.state == HALF_OPEN else 0.0

    # -- outcome reporting -------------------------------------------------

    def record_success(self) -> None:
        """A cell completed (or failed deterministically — the worker
        itself is healthy)."""
        self.consecutive_failures = 0
        if self.state in (HALF_OPEN, OPEN):
            self._probe_started_at = None
            self._opened_at = None
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A crash or timeout record: one more strike."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._trip()
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._opened_at = self._clock()
        self._probe_started_at = None
        self._transition(OPEN)

    def status(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "reset_timeout_s": self.reset_timeout_s,
            "retry_after_s": round(self.retry_after_s, 3),
        }

"""Analysis: experiment drivers, table renderers, terminal figures, and
trace-locality tools for every figure and table in the paper's evaluation."""

from repro.analysis.experiments import (
    ExperimentSetting,
    baseline_rows,
    compare_disciplines,
    sweep_policies,
    tuned_reverse_aggressive,
)
from repro.analysis.figures import render_figure, render_sweep_curve
from repro.analysis.locality import (
    characterize,
    hot_block_share,
    miss_ratio_curve,
    reuse_distances,
    sequentiality,
    working_set_curve,
)
from repro.analysis.tables import (
    format_appendix_table,
    format_breakdown_table,
    format_elapsed_grid,
    format_table,
)

__all__ = [
    "ExperimentSetting",
    "baseline_rows",
    "characterize",
    "compare_disciplines",
    "format_appendix_table",
    "format_breakdown_table",
    "format_elapsed_grid",
    "format_table",
    "hot_block_share",
    "miss_ratio_curve",
    "render_figure",
    "render_sweep_curve",
    "reuse_distances",
    "sequentiality",
    "sweep_policies",
    "tuned_reverse_aggressive",
    "working_set_curve",
]

"""Trace locality analysis: reuse distances, miss-ratio curves, and
sequentiality metrics.

The paper picks cache sizes (Table 7) and explains results through each
trace's locality structure ("the index files are accessed repeatedly,
whereas the data files are accessed infrequently").  These tools make that
structure measurable:

* :func:`reuse_distances` — per-reference LRU stack distances (Mattson);
* :func:`miss_ratio_curve` — cold+capacity miss ratios for every cache
  size at once, from one pass over the distances;
* :func:`sequentiality` — fraction of references that continue a
  sequential run (what the drive's readahead cache sees);
* :func:`working_set_curve` — distinct blocks per window (Denning);
* :func:`hot_block_share` — how concentrated references are on the
  hottest blocks (glimpse's index-vs-data split in one number).

The Mattson computation uses a Fenwick tree: O(n log m) for n references
over m distinct blocks.
"""

import math
from typing import Dict, List, Sequence

from repro.core.nextref import INFINITE


class _FenwickTree:
    """Binary indexed tree over reference timestamps (prefix sums)."""

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)
        self.size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def reuse_distances(blocks: Sequence[int]) -> List[float]:
    """LRU stack distance of every reference.

    The distance is the number of *distinct* blocks referenced since the
    previous access to the same block; first-ever accesses get
    ``INFINITE`` (cold misses at any cache size).
    """
    n = len(blocks)
    tree = _FenwickTree(n)
    last_position: Dict[int, int] = {}
    distances: List[float] = []
    for position, block in enumerate(blocks):
        previous = last_position.get(block)
        if previous is None:
            distances.append(INFINITE)
        else:
            # distinct blocks touched in (previous, position)
            distinct = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances.append(float(distinct))
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[block] = position
    return distances


def miss_ratio_curve(
    blocks: Sequence[int], cache_sizes: Sequence[int]
) -> Dict[int, float]:
    """Fraction of references that miss an LRU cache of each given size.

    One pass over the reuse distances serves every size simultaneously
    (Mattson's inclusion property); cold misses count at all sizes.
    """
    if not blocks:
        return {size: 0.0 for size in cache_sizes}
    distances = reuse_distances(blocks)
    n = len(distances)
    out = {}
    for size in cache_sizes:
        if size < 1:
            raise ValueError("cache sizes must be positive")
        misses = sum(1 for d in distances if math.isinf(d) or d >= size)
        out[size] = misses / n
    return out


def sequentiality(blocks: Sequence[int]) -> float:
    """Fraction of references that immediately follow their predecessor
    (block == previous + 1) — the runs the readahead cache can absorb."""
    if len(blocks) < 2:
        return 0.0
    runs = sum(1 for a, b in zip(blocks, blocks[1:]) if b == a + 1)
    return runs / (len(blocks) - 1)


def working_set_curve(
    blocks: Sequence[int], window_sizes: Sequence[int]
) -> Dict[int, float]:
    """Mean number of distinct blocks per window of each size (Denning).

    Uses non-overlapping windows, which is accurate enough for trace
    characterization and O(n) per window size.
    """
    out = {}
    n = len(blocks)
    for window in window_sizes:
        if window < 1:
            raise ValueError("window sizes must be positive")
        if n == 0:
            out[window] = 0.0
            continue
        totals = []
        for start in range(0, n, window):
            chunk = blocks[start:start + window]
            totals.append(len(set(chunk)))
        out[window] = sum(totals) / len(totals)
    return out


def hot_block_share(blocks: Sequence[int], top_fraction: float = 0.1) -> float:
    """Share of references landing on the hottest ``top_fraction`` of
    distinct blocks (glimpse: a few index blocks absorb most reads)."""
    if not blocks:
        return 0.0
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    from collections import Counter

    counts = Counter(blocks)
    top_count = max(1, int(len(counts) * top_fraction))
    hottest = sum(count for _b, count in counts.most_common(top_count))
    return hottest / len(blocks)


def characterize(trace) -> Dict[str, float]:
    """One-call locality fingerprint of a trace."""
    blocks = trace.blocks
    distinct = len(set(blocks))
    curve = miss_ratio_curve(
        blocks, [max(1, distinct // 8), max(1, distinct // 2), distinct]
    )
    return {
        "references": len(blocks),
        "distinct_blocks": distinct,
        "sequentiality": round(sequentiality(blocks), 3),
        "hot10_share": round(hot_block_share(blocks, 0.1), 3),
        "miss_ratio_small_cache": round(curve[max(1, distinct // 8)], 3),
        "miss_ratio_half_cache": round(curve[max(1, distinct // 2)], 3),
        "miss_ratio_full_cache": round(curve[distinct], 3),
    }

"""Terminal renderings of the paper's stacked-bar figures.

Each figure in the paper is a group of bars per disk count, one bar per
algorithm, stacked into CPU time, driver time, and stall time.  This
module draws the same thing in monospace so the benchmarks and CLI can
show a *figure*, not just a table::

    Figure 3 (left) -- synth
    1 disk   fixed-horizon  |######################====!!!!!!!!!!!!!| 219.5s
             aggressive     |##########################====!!!!!!!  | 174.9s
    ...
    legend: # compute  = driver  ! stall

Bars share one scale (the slowest run) so relative heights read the same
way the paper's bars do.
"""

from typing import Dict, List, Sequence

from repro.core.results import SimulationResult

#: Bar glyphs for the three elapsed-time components.
COMPUTE_GLYPH = "#"
DRIVER_GLYPH = "="
STALL_GLYPH = "!"

LEGEND = f"legend: {COMPUTE_GLYPH} compute   {DRIVER_GLYPH} driver   {STALL_GLYPH} stall"


def _bar(result: SimulationResult, scale_ms: float, width: int) -> str:
    if scale_ms <= 0:
        return " " * width
    def span(ms):
        return int(round(width * ms / scale_ms))
    compute = span(result.compute_ms)
    driver = span(result.driver_ms)
    stall = span(result.stall_ms)
    bar = (
        COMPUTE_GLYPH * compute + DRIVER_GLYPH * driver + STALL_GLYPH * stall
    )
    return bar[:width].ljust(width)


def render_figure(
    title: str,
    results: Sequence[SimulationResult],
    width: int = 46,
) -> str:
    """Render grouped stacked bars: one group per disk count, one bar per
    policy, drawn in first-appearance order (the paper's bar order)."""
    if not results:
        return f"{title}\n(no results)"
    def base(name):
        return name.split("(")[0]

    by_disks: Dict[int, List[SimulationResult]] = {}
    policy_order: List[str] = []
    for result in results:
        by_disks.setdefault(result.num_disks, []).append(result)
        if base(result.policy_name) not in policy_order:
            policy_order.append(base(result.policy_name))
    scale = max(r.elapsed_ms for r in results)
    name_width = max(len(r.policy_name) for r in results)
    lines = [title]
    for disks in sorted(by_disks):
        group = sorted(
            by_disks[disks],
            key=lambda r: policy_order.index(base(r.policy_name)),
        )
        label = f"{disks} disk" + ("s" if disks != 1 else "")
        for i, result in enumerate(group):
            prefix = f"{label:<9}" if i == 0 else " " * 9
            lines.append(
                f"{prefix}{result.policy_name:<{name_width}} "
                f"|{_bar(result, scale, width)}| {result.elapsed_s:7.2f}s"
            )
        lines.append("")
    lines.append(LEGEND)
    return "\n".join(lines)


def render_sweep_curve(
    title: str,
    series: Dict[str, Dict[int, float]],
    width: int = 50,
    height: int = 12,
) -> str:
    """ASCII line plot: one glyph per named series, x = parameter value,
    y = elapsed seconds (used for the Figure 6/7 parameter sweeps)."""
    if not series:
        return f"{title}\n(no data)"
    xs = sorted({x for values in series.values() for x in values})
    ys = [v for values in series.values() for v in values.values()]
    lo, hi = min(ys), max(ys)
    if hi <= lo:
        hi = lo + 1.0
    glyphs = "abcdefghij"
    grid = [[" "] * len(xs) for _ in range(height)]
    for s_index, (name, values) in enumerate(sorted(series.items())):
        glyph = glyphs[s_index % len(glyphs)]
        for col, x in enumerate(xs):
            if x not in values:
                continue
            row = int(round((hi - values[x]) / (hi - lo) * (height - 1)))
            grid[row][col] = glyph
    unit = max(1, width // max(1, len(xs)))
    lines = [title]
    for row_index, row in enumerate(grid):
        y_value = hi - (hi - lo) * row_index / (height - 1)
        label = f"{y_value:9.1f}s |" if row_index % 3 == 0 else "           |"
        lines.append(label + "".join(cell * unit for cell in row))
    axis = "           +" + "-" * (unit * len(xs))
    lines.append(axis)
    lines.append(
        "            " + "".join(f"{x:<{unit}}" for x in xs)
    )
    for s_index, name in enumerate(sorted(series)):
        lines.append(f"  {glyphs[s_index % len(glyphs)]} = {name}")
    return "\n".join(lines)

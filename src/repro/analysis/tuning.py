"""Parameter selection: the paper's open problem, made tractable.

Section 6: *"we have no analytical basis for dynamically determining
aggressive's batch size, fixed horizon's prefetch horizon H, reverse
aggressive's batch sizes and estimate of F, or forestall's batch size and
estimate F′."*  This module offers the two practical answers:

* **analytic recommendations** from first principles and trace statistics
  (cheap, no simulation):

  - ``recommend_horizon`` — H = expected access time / per-reference CPU
    service time, the paper's own formula, fed by the trace's measured
    sequentiality (sequential traces hit the drive cache at ~3.5 ms,
    random ones pay ~15 ms);
  - ``recommend_batch_size`` — batch ≈ the number of outstanding requests
    that keeps a disk's CSCAN sweep dense without overshooting the
    missing-run length (Table 6's shape recovered from the trace);

* **empirical search** (``search_parameter``) — a coarse-to-fine search
  over a candidate ladder, reusing the experiment machinery, for when a
  few simulation runs are affordable.

The bench ``bench_ext_tuning.py`` scores the analytic recommendations
against exhaustively searched optima.
"""

import math
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.locality import reuse_distances, sequentiality

#: Access-time estimates by access pattern (ms): drive-cache hits vs seeks.
SEQUENTIAL_ACCESS_MS = 3.5
RANDOM_ACCESS_MS = 15.0


def expected_access_ms(blocks: Sequence[int]) -> float:
    """Expected per-fetch disk time, interpolated by trace sequentiality."""
    fraction = sequentiality(blocks)
    return RANDOM_ACCESS_MS + fraction * (
        SEQUENTIAL_ACCESS_MS - RANDOM_ACCESS_MS
    )


def recommend_horizon(trace, cache_read_ms: float = None) -> int:
    """The paper's H formula with trace-aware inputs.

    ``H = expected access time / per-block CPU service time``.  The paper
    divides by the 243 µs cache-read cost (yielding 62); dividing by the
    measured mean inter-reference compute time gives the *stall-coverage*
    horizon instead — enough lookahead to hide one fetch behind compute.
    We return the larger of the two (lookahead is cheap until it forces
    early evictions), capped below the working-set size so the eviction
    proviso can still hold.
    """
    access = expected_access_ms(trace.blocks)
    per_block_cpu = cache_read_ms if cache_read_ms is not None else 0.243
    coverage = access / max(1e-3, trace.mean_compute_ms)
    horizon = max(access / per_block_cpu, coverage)
    distinct = max(2, trace.distinct_blocks)
    return max(2, min(int(round(horizon)), distinct - 1))


def missing_run_length(blocks: Sequence[int], cache_blocks: int) -> float:
    """Mean length of consecutive would-miss runs for an LRU-ish cache.

    Batching pays until a batch covers the typical run of misses; beyond
    that it only reorders requests the application will not need soon.
    """
    distances = reuse_distances(blocks)
    runs: List[int] = []
    current = 0
    for distance in distances:
        missing = math.isinf(distance) or distance >= cache_blocks
        if missing:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    if not runs:
        return 0.0
    return sum(runs) / len(runs)


def recommend_batch_size(
    trace, num_disks: int, cache_blocks: int,
    floor: int = 4, ceiling: int = 160,
) -> int:
    """Batch ≈ the per-disk share of a typical missing run, capped by
    cache pressure.

    Two forces (Figure 6): a batch should be long enough to cover the
    typical run of misses (dense CSCAN sweeps), but every queued fetch
    reserves a buffer and forces an earlier eviction, so batches beyond a
    small fraction of the cache trade replacement quality for scheduling —
    empirically the knee sits near ``K/16``.  Recovers Table 6's shape:
    big batches for one disk, small ones for large arrays.
    """
    run = missing_run_length(trace.blocks, cache_blocks)
    if run <= 0:
        return floor
    share = min(run / num_disks, cache_blocks / 16.0)
    # When references are mostly single-touch there is nothing for an
    # early eviction to hurt, and CSCAN reordering of random requests is
    # pure profit: open the batch up to the cache-pressure cap.
    from collections import Counter

    counts = Counter(trace.blocks)
    single_touch = sum(c for c in counts.values() if c == 1)
    if single_touch / max(1, len(trace.blocks)) > 0.5:
        share = max(share, cache_blocks / 16.0 / num_disks)
    # Round to the nearest power-of-two-ish rung for stability.
    rung = floor
    while rung * 2 <= min(share, ceiling):
        rung *= 2
    return max(floor, min(int(rung), ceiling))


def search_parameter(
    evaluate: Callable[[int], float],
    candidates: Sequence[int],
    refine: bool = True,
) -> Tuple[int, float, Dict[int, float]]:
    """Coarse-to-fine minimization over an integer parameter.

    Evaluates the candidate ladder, then (optionally) probes the midpoints
    flanking the best rung.  Returns (best value, best score, all scores).
    Deterministic and frugal: |candidates| + ≤2 evaluations.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    scores: Dict[int, float] = {}
    for candidate in candidates:
        scores[candidate] = evaluate(candidate)
    best = min(scores, key=scores.get)
    if refine:
        ladder = sorted(scores)
        index = ladder.index(best)
        probes = []
        if index > 0:
            probes.append((ladder[index - 1] + best) // 2)
        if index + 1 < len(ladder):
            probes.append((best + ladder[index + 1]) // 2)
        for probe in probes:
            if probe not in scores and probe > 0:
                scores[probe] = evaluate(probe)
        best = min(scores, key=scores.get)
    return best, scores[best], scores

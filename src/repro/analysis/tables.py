"""Plain-text renderers that print results the way the paper's tables do."""

from typing import Dict, List, Sequence

from repro.core.results import SimulationResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Monospace table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered))
        if rendered
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_breakdown_table(
    results: List[SimulationResult], title: str = ""
) -> str:
    """Figure-style breakdown: one row per run, elapsed split into
    compute / driver / stall (the paper's stacked bars, as numbers)."""
    headers = (
        "trace", "policy", "disks",
        "cpu_s", "driver_s", "stall_s", "elapsed_s", "fetches", "util",
    )
    rows = [
        (
            r.trace_name, r.policy_name, r.num_disks,
            round(r.compute_s, 3), round(r.driver_s, 3),
            round(r.stall_s, 3), round(r.elapsed_s, 3),
            r.fetches, round(r.disk_utilization, 2),
        )
        for r in results
    ]
    body = format_table(headers, rows)
    return f"{title}\n{body}" if title else body


def format_stall_table(result: SimulationResult) -> str:
    """Stall attribution: per cause, the stall time it explains.

    Uses the ``stall_breakdown`` filled in by an attached
    :class:`repro.obs.Observer` (empty on unobserved runs); causes are
    ordered by explained time, and the total row closes the identity
    against ``stall_ms``.
    """
    breakdown = result.stall_breakdown
    if not breakdown:
        return "(no stall attribution: run without an observer)"
    total = result.stall_ms
    rows = [
        (
            cause,
            round(ms / 1000.0, 3),
            f"{ms / total:.1%}" if total > 0 else "-",
        )
        for cause, ms in sorted(
            breakdown.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    rows.append(("total", round(total / 1000.0, 3), "100.0%" if total > 0 else "-"))
    return format_table(("stall cause", "stall_s", "share"), rows)


def format_utilization_table(result: SimulationResult) -> str:
    """Per-disk busy time and utilization (Table 4's numbers, per disk)."""
    elapsed = result.elapsed_ms
    rows = []
    for disk, busy in enumerate(result.per_disk_busy_ms):
        rows.append(
            (
                f"disk {disk}",
                round(busy / 1000.0, 3),
                round(busy / elapsed, 3) if elapsed > 0 else 0.0,
            )
        )
    rows.append(
        (
            "mean",
            round(sum(result.per_disk_busy_ms) / max(1, result.num_disks) / 1000.0, 3),
            round(result.disk_utilization, 3),
        )
    )
    return format_table(("disk", "busy_s", "utilization"), rows)


def format_appendix_table(
    table: Dict[str, List[SimulationResult]], disk_counts: Sequence[int]
) -> str:
    """Appendix-A layout: per policy, the six measurement rows across disks."""
    sections = []
    header = ["Disks"] + [str(d) for d in disk_counts]
    for policy, results in table.items():
        rows = [
            ["fetches"] + [r.fetches for r in results],
            ["driver time (sec)"] + [round(r.driver_s, 4) for r in results],
            ["stall time (sec)"] + [round(r.stall_s, 3) for r in results],
            ["elapsed time (sec)"] + [round(r.elapsed_s, 3) for r in results],
            ["avg fetch (msec)"] + [round(r.average_fetch_ms, 3) for r in results],
            ["avg disk util"] + [round(r.disk_utilization, 2) for r in results],
        ]
        sections.append(policy + "\n" + format_table(header, rows))
    return "\n\n".join(sections)


def format_elapsed_grid(
    grid: Dict, row_label: str, col_labels: Sequence, title: str = ""
) -> str:
    """Parameter-sweep grid of elapsed seconds (Appendix F layout)."""
    headers = [row_label] + [str(c) for c in col_labels]
    rows = [[key] + [round(v, 3) for v in values] for key, values in grid.items()]
    body = format_table(headers, rows)
    return f"{title}\n{body}" if title else body

"""Experiment drivers: the parameter sweeps behind each table and figure.

Every evaluation artifact in the paper reduces to a sweep over (trace,
policy, number of disks, parameters).  :class:`ExperimentSetting` carries
the shared context (scale, discipline, cache), and the functions here
build declarative **cell plans** (:class:`repro.runner.Cell`) and hand
them to :mod:`repro.runner` for execution, returning
:class:`~repro.core.results.SimulationResult` lists that the table
renderers and benchmark harnesses consume.  The same plans run
unchanged — and bit-identically — on the supervised parallel runner
(``repro-sim sweep --jobs``; see ``docs/RUNNER.md``).

``scale`` shrinks traces *and* the cache proportionally, preserving the
working-set/cache ratio that determines which regime (I/O-bound vs
compute-bound) a configuration falls into.
"""

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import SimConfig, Simulator, make_policy
from repro.core.results import SimulationResult
from repro.runner.execute import (
    execute_cell,
    execute_cells,
    get_trace,
    scaled_policy_kwargs,
    validate_names,
)
from repro.runner.plan import Cell, baseline_cells, sweep_cells, tuned_reverse_cell
from repro.trace import cache_blocks_for

__all__ = [
    "PAPER_DISK_COUNTS",
    "FIGURE_POLICY_ORDER",
    "ExperimentSetting",
    "baseline_rows",
    "compare_disciplines",
    "default_scale",
    "run_one",
    "scaled_policy_kwargs",
    "sweep_policies",
    "tuned_reverse_aggressive",
]

#: Disk-array sizes simulated by the paper.
PAPER_DISK_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16)

#: The algorithms in the order the paper's figures present them.
FIGURE_POLICY_ORDER = ("fixed-horizon", "aggressive", "reverse-aggressive")


def default_scale() -> float:
    """Benchmark trace scale: 1.0 under ``REPRO_FULL=1``, else ``REPRO_SCALE``
    (default 0.25) — small enough for quick regeneration, large enough to
    keep every qualitative result."""
    if os.environ.get("REPRO_FULL") == "1":
        return 1.0
    return float(os.environ.get("REPRO_SCALE", "0.25"))


@dataclass
class ExperimentSetting:
    """Shared context for one experiment's sweep."""

    scale: float = 1.0
    discipline: str = "cscan"
    cpu_speedup: float = 1.0
    cache_blocks: Optional[int] = None  # None: the paper's per-trace choice
    disk_model: str = "hp97560"
    seed: Optional[int] = None
    _trace_cache: Dict[object, object] = field(default_factory=dict, repr=False)

    def trace(self, name: str):
        return get_trace(name, self.scale, self.seed, cache=self._trace_cache)

    def cache_for(self, trace_name: str) -> int:
        if self.cache_blocks is not None:
            return self.cache_blocks
        return cache_blocks_for(trace_name, self.scale)

    def sim_config(self, trace_name: str, **overrides) -> SimConfig:
        return SimConfig(
            cache_blocks=self.cache_for(trace_name),
            discipline=self.discipline,
            cpu_speedup=self.cpu_speedup,
            disk_model=self.disk_model,
        ).with_(**overrides)

    def cell(self, trace_name: str, policy: str, num_disks: int,
             **extra) -> Cell:
        """The declarative form of one ``run_one`` call."""
        return Cell.from_setting(self, trace_name, policy, num_disks, **extra)


def run_one(
    setting: ExperimentSetting,
    trace_name: str,
    policy: str,
    num_disks: int,
    config_overrides: dict = None,
    profiler=None,
    observer=None,
    **policy_kwargs,
) -> SimulationResult:
    """One simulation under an experiment setting.

    Unknown trace or policy names fail immediately with a ``ValueError``
    listing the valid names (the runner's failure records quote this
    message, so it must be readable).  Policies receive scale-adjusted
    horizon/batch defaults (see :func:`scaled_policy_kwargs`); explicit
    keyword arguments win.  A :class:`~repro.perf.PhaseProfiler` passed
    as ``profiler`` collects a per-phase wall-clock breakdown without
    changing the result; a :class:`~repro.obs.Observer` passed as
    ``observer`` records the event trace and stall attribution (also
    without changing the result).
    """
    validate_names(trace_name, policy)
    if not isinstance(policy, str):
        # Pre-built policy instances can't ride in a declarative cell;
        # run them directly on the same code path the executor uses.
        trace = setting.trace(trace_name)
        config = setting.sim_config(trace_name, **(config_overrides or {}))
        return Simulator(
            trace, make_policy(policy, **policy_kwargs), num_disks, config,
            profiler=profiler, observer=observer,
        ).run()
    cell = setting.cell(
        trace_name, policy, num_disks,
        config_overrides=dict(config_overrides or {}),
        policy_kwargs=dict(policy_kwargs),
    )
    outcome = execute_cell(
        cell, profiler=profiler, observer=observer,
        trace_cache=setting._trace_cache,
    )
    return outcome.result


def sweep_policies(
    setting: ExperimentSetting,
    trace_name: str,
    policies: Sequence[str],
    disk_counts: Sequence[int],
    tuned_reverse: bool = False,
) -> List[SimulationResult]:
    """The standard figure sweep: policies × disk counts on one trace.

    With ``tuned_reverse``, reverse aggressive's fetch-time estimate and
    reverse batch size are grid-searched per disk count, as the paper's
    baseline does ("chosen to minimize its elapsed time").
    """
    cells = sweep_cells(
        setting, trace_name, policies, disk_counts, tuned_reverse=tuned_reverse
    )
    outcomes = execute_cells(cells, trace_cache=setting._trace_cache)
    return [outcome.result for outcome in outcomes]


def tuned_reverse_aggressive(
    setting: ExperimentSetting,
    trace_name: str,
    num_disks: int,
    fetch_times: Sequence[float] = (2, 4, 8, 16, 64),
    batch_sizes: Sequence[int] = None,
) -> SimulationResult:
    """Reverse aggressive with the best (F, reverse batch) for this config.

    The paper uses "the single best estimate of F ... for each trace" and
    per-configuration batch sizes; this helper reproduces that tuning with
    a small grid (pass :data:`APPENDIX_F_FETCH_TIMES` /
    :data:`APPENDIX_F_BATCH_SIZES` for the full Appendix F grid).  An
    empty grid raises :class:`ValueError` naming the offending argument
    rather than failing later on a missing best result.
    """
    cell = tuned_reverse_cell(
        setting, trace_name, num_disks,
        fetch_times=fetch_times, batch_sizes=batch_sizes,
    )
    outcome = execute_cell(cell, trace_cache=setting._trace_cache)
    return outcome.result


def baseline_rows(
    setting: ExperimentSetting,
    trace_name: str,
    disk_counts: Sequence[int],
    policies: Sequence[str] = (
        "fixed-horizon",
        "aggressive",
        "reverse-aggressive",
        "forestall",
    ),
    tuned_reverse: bool = True,
) -> Dict[str, List[SimulationResult]]:
    """One Appendix-A-style table: per policy, one result per disk count."""
    cells = baseline_cells(
        setting, trace_name, disk_counts, policies, tuned_reverse=tuned_reverse
    )
    outcomes = execute_cells(cells, trace_cache=setting._trace_cache)
    table: Dict[str, List[SimulationResult]] = {}
    per_policy = len(disk_counts)
    for index, policy in enumerate(policies):
        row = outcomes[index * per_policy:(index + 1) * per_policy]
        table[policy] = [outcome.result for outcome in row]
    return table


def compare_disciplines(
    setting: ExperimentSetting,
    trace_name: str,
    policy: str,
    disk_counts: Sequence[int],
) -> List[Tuple[int, SimulationResult, SimulationResult, float]]:
    """CSCAN vs FCFS (Table 5): per disk count, both results and the
    percentage improvement of CSCAN over FCFS."""
    rows = []
    for num_disks in disk_counts:
        cscan = run_one(
            setting, trace_name, policy, num_disks,
            config_overrides={"discipline": "cscan"},
        )
        fcfs = run_one(
            setting, trace_name, policy, num_disks,
            config_overrides={"discipline": "fcfs"},
        )
        improvement = 100.0 * (fcfs.elapsed_ms - cscan.elapsed_ms) / fcfs.elapsed_ms
        rows.append((num_disks, cscan, fcfs, improvement))
    return rows

"""Experiment drivers: the parameter sweeps behind each table and figure.

Every evaluation artifact in the paper reduces to a sweep over (trace,
policy, number of disks, parameters).  :class:`ExperimentSetting` carries
the shared context (scale, discipline, cache), and the functions here run
the sweeps and return :class:`~repro.core.results.SimulationResult` lists
that the table renderers and benchmark harnesses consume.

``scale`` shrinks traces *and* the cache proportionally, preserving the
working-set/cache ratio that determines which regime (I/O-bound vs
compute-bound) a configuration falls into.
"""

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import SimConfig, Simulator, make_policy
from repro.core.batching import batch_size_for
from repro.core.results import SimulationResult
from repro.trace import build as build_workload
from repro.trace import cache_blocks_for

#: Disk-array sizes simulated by the paper.
PAPER_DISK_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16)

#: The algorithms in the order the paper's figures present them.
FIGURE_POLICY_ORDER = ("fixed-horizon", "aggressive", "reverse-aggressive")


def default_scale() -> float:
    """Benchmark trace scale: 1.0 under ``REPRO_FULL=1``, else ``REPRO_SCALE``
    (default 0.25) — small enough for quick regeneration, large enough to
    keep every qualitative result."""
    if os.environ.get("REPRO_FULL") == "1":
        return 1.0
    return float(os.environ.get("REPRO_SCALE", "0.25"))


@dataclass
class ExperimentSetting:
    """Shared context for one experiment's sweep."""

    scale: float = 1.0
    discipline: str = "cscan"
    cpu_speedup: float = 1.0
    cache_blocks: Optional[int] = None  # None: the paper's per-trace choice
    disk_model: str = "hp97560"
    seed: Optional[int] = None
    _trace_cache: Dict[str, object] = field(default_factory=dict, repr=False)

    def trace(self, name: str):
        trace = self._trace_cache.get(name)
        if trace is None:
            trace = build_workload(name, scale=self.scale, seed=self.seed)
            self._trace_cache[name] = trace
        return trace

    def cache_for(self, trace_name: str) -> int:
        if self.cache_blocks is not None:
            return self.cache_blocks
        return cache_blocks_for(trace_name, self.scale)

    def sim_config(self, trace_name: str, **overrides) -> SimConfig:
        return SimConfig(
            cache_blocks=self.cache_for(trace_name),
            discipline=self.discipline,
            cpu_speedup=self.cpu_speedup,
            disk_model=self.disk_model,
        ).with_(**overrides)


def scaled_policy_kwargs(
    policy: str, num_disks: int, scale: float
) -> dict:
    """Device-time parameters, shrunk alongside the trace.

    The prefetch horizon (62) and Table 6 batch sizes are *device*
    constants; at reduced trace scale they would dwarf the (shrunken)
    missing-block runs and distort every regime.  Scaling them with the
    trace preserves the paper's qualitative structure.
    """
    if scale >= 1.0:
        return {}
    kwargs = {}
    if policy in ("fixed-horizon", "forestall"):
        kwargs["horizon"] = max(8, int(62 * scale))
    if policy in ("aggressive", "forestall", "reverse-aggressive"):
        kwargs["batch_size"] = max(4, int(batch_size_for(num_disks) * scale))
    if policy == "reverse-aggressive":
        kwargs["forward_batch_size"] = kwargs.pop("batch_size")
    return kwargs


def run_one(
    setting: ExperimentSetting,
    trace_name: str,
    policy: str,
    num_disks: int,
    config_overrides: dict = None,
    profiler=None,
    observer=None,
    **policy_kwargs,
) -> SimulationResult:
    """One simulation under an experiment setting.

    Policies receive scale-adjusted horizon/batch defaults (see
    :func:`scaled_policy_kwargs`); explicit keyword arguments win.  A
    :class:`~repro.perf.PhaseProfiler` passed as ``profiler`` collects a
    per-phase wall-clock breakdown without changing the result; a
    :class:`~repro.obs.Observer` passed as ``observer`` records the event
    trace and stall attribution (also without changing the result).
    """
    trace = setting.trace(trace_name)
    config = setting.sim_config(trace_name, **(config_overrides or {}))
    kwargs = scaled_policy_kwargs(policy, num_disks, setting.scale)
    kwargs.update(policy_kwargs)
    policy_instance = make_policy(policy, **kwargs)
    return Simulator(
        trace, policy_instance, num_disks, config,
        profiler=profiler, observer=observer,
    ).run()


def sweep_policies(
    setting: ExperimentSetting,
    trace_name: str,
    policies: Sequence[str],
    disk_counts: Sequence[int],
    tuned_reverse: bool = False,
) -> List[SimulationResult]:
    """The standard figure sweep: policies × disk counts on one trace.

    With ``tuned_reverse``, reverse aggressive's fetch-time estimate and
    reverse batch size are grid-searched per disk count, as the paper's
    baseline does ("chosen to minimize its elapsed time").
    """
    results = []
    for num_disks in disk_counts:
        for policy in policies:
            if policy == "reverse-aggressive" and tuned_reverse:
                results.append(
                    tuned_reverse_aggressive(setting, trace_name, num_disks)
                )
            else:
                results.append(run_one(setting, trace_name, policy, num_disks))
    return results


def tuned_reverse_aggressive(
    setting: ExperimentSetting,
    trace_name: str,
    num_disks: int,
    fetch_times: Sequence[float] = (2, 4, 8, 16, 64),
    batch_sizes: Sequence[int] = None,
) -> SimulationResult:
    """Reverse aggressive with the best (F, reverse batch) for this config.

    The paper uses "the single best estimate of F ... for each trace" and
    per-configuration batch sizes; this helper reproduces that tuning with
    a small grid (pass :data:`APPENDIX_F_FETCH_TIMES` /
    :data:`APPENDIX_F_BATCH_SIZES` for the full Appendix F grid).
    """
    if batch_sizes is None:
        batch_sizes = (batch_size_for(num_disks),)
    best = None
    for fetch_time in fetch_times:
        for batch in batch_sizes:
            result = run_one(
                setting,
                trace_name,
                "reverse-aggressive",
                num_disks,
                fetch_time_estimate=fetch_time,
                reverse_batch_size=batch,
            )
            if best is None or result.elapsed_ms < best.elapsed_ms:
                best = result
    best.policy_name = "reverse-aggressive"
    return best


def baseline_rows(
    setting: ExperimentSetting,
    trace_name: str,
    disk_counts: Sequence[int],
    policies: Sequence[str] = (
        "fixed-horizon",
        "aggressive",
        "reverse-aggressive",
        "forestall",
    ),
    tuned_reverse: bool = True,
) -> Dict[str, List[SimulationResult]]:
    """One Appendix-A-style table: per policy, one result per disk count."""
    table: Dict[str, List[SimulationResult]] = {}
    for policy in policies:
        row = []
        for num_disks in disk_counts:
            if policy == "reverse-aggressive" and tuned_reverse:
                row.append(tuned_reverse_aggressive(setting, trace_name, num_disks))
            else:
                row.append(run_one(setting, trace_name, policy, num_disks))
        table[policy] = row
    return table


def compare_disciplines(
    setting: ExperimentSetting,
    trace_name: str,
    policy: str,
    disk_counts: Sequence[int],
) -> List[Tuple[int, SimulationResult, SimulationResult, float]]:
    """CSCAN vs FCFS (Table 5): per disk count, both results and the
    percentage improvement of CSCAN over FCFS."""
    rows = []
    for num_disks in disk_counts:
        cscan = run_one(
            setting, trace_name, policy, num_disks,
            config_overrides={"discipline": "cscan"},
        )
        fcfs = run_one(
            setting, trace_name, policy, num_disks,
            config_overrides={"discipline": "fcfs"},
        )
        improvement = 100.0 * (fcfs.elapsed_ms - cscan.elapsed_ms) / fcfs.elapsed_ms
        rows.append((num_disks, cscan, fcfs, improvement))
    return rows

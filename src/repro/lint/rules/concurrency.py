"""The fork/shared-state rule (SL014).

``SupervisedPool`` (docs/RUNNER.md) forks workers with
``multiprocessing.get_context("fork")``: the child starts with a
copy-on-write snapshot of the parent's memory.  Any module-global a
worker *mutates* silently diverges from the parent's copy — the code
reads like shared state but is not, which is exactly the bug class the
PR 6 chaos tests only caught by luck.  Equally, an OS handle (file
descriptor, socket) captured at module scope is genuinely shared across
the fork, so parent and child interleave writes on one file offset.

SL014 resolves every ``target=`` handed to a ``*.Process(...)``
constructor, takes the call-graph closure from the project summaries
(dict registries like ``CELL_KINDS`` included), and inside that
worker-reachable code flags:

* mutation of a module-global mutable (direct, through ``global``, or
  through a one-hop local alias such as
  ``store = _TRACE_CACHE if cache is None else cache``);
* reads of module-globals or ``self`` attributes bound to an fd/socket.

Legitimate per-process caches exist (a worker memoizing its own trace
loads); the fix for a false positive is an inline suppression *with a
comment saying why the divergence is intended*.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Sequence, Set

from repro.lint.astutil import scoped_walk
from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import register

if TYPE_CHECKING:
    from repro.lint.project import FunctionInfo, ProjectIndex

_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "update", "setdefault", "popitem", "add", "discard",
        "appendleft", "popleft",
    }
)


@register
class ForkSharedStateRule(Rule):
    """Module state mutated inside a forked worker diverges from the parent
    without any error; fds captured across fork are truly shared."""

    id = "SL014"
    severity = "error"
    summary = "shared mutable state / fd capture across the fork boundary"

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        for root_qualname, _call, _module in project.process_targets:
            root_info = project.functions.get(root_qualname)
            if root_info is None:
                continue
            reachable = project.reachable_from([root_qualname])
            for qualname in sorted(reachable):
                info = project.functions[qualname]
                if not info.module.module.startswith("repro"):
                    continue
                yield from self._check_function(project, info, root_info.display)

    def _check_function(
        self, project: "ProjectIndex", info: "FunctionInfo", root: str
    ) -> Iterator[Finding]:
        module_name = info.module.module
        mutable = project.mutable_globals(module_name)
        handles = project.handle_globals(module_name)
        class_handles: Set[str] = set()
        if info.cls is not None:
            cls = project.class_info(f"{module_name}:{info.cls}")
            if cls is not None:
                class_handles = cls.handle_attrs
        if not mutable and not handles and not class_handles:
            return
        aliases = self._aliases(info.node, mutable)
        watched = mutable | aliases
        declared_global: Set[str] = set()
        for node in scoped_walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in scoped_walk(info.node):
            yield from self._check_mutation(
                info, node, watched, mutable, aliases, declared_global, root
            )
            yield from self._check_handle_read(
                info, node, handles, class_handles, root
            )

    def _aliases(self, func: ast.AST, mutable: Set[str]) -> Set[str]:
        """Locals bound (possibly conditionally) to a module-global mutable."""
        aliases: Set[str] = set()
        for node in scoped_walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            candidates = [value]
            if isinstance(value, ast.IfExp):
                candidates = [value.body, value.orelse]
            elif isinstance(value, ast.BoolOp):
                candidates = list(value.values)
            for candidate in candidates:
                if isinstance(candidate, ast.Name) and candidate.id in mutable:
                    aliases.add(target.id)
                    break
        return aliases

    def _check_mutation(
        self,
        info: "FunctionInfo",
        node: ast.AST,
        watched: Set[str],
        mutable: Set[str],
        aliases: Set[str],
        declared_global: Set[str],
        root: str,
    ) -> Iterator[Finding]:
        def origin(name: str) -> str:
            return (
                f"module-global `{name}`"
                if name in mutable
                else f"`{name}` (aliasing a module-global)"
            )

        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                name = base.id
                if target is base:
                    # Rebinding a bare name only matters under `global`.
                    if name in declared_global and name in watched:
                        yield self._mutation_finding(info, node, origin(name), root)
                elif name in watched:
                    yield self._mutation_finding(info, node, origin(name), root)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in watched and target is not base:
                    yield self._mutation_finding(info, node, origin(base.id), root)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS and isinstance(node.func.value, ast.Name):
                name = node.func.value.id
                if name in watched:
                    yield self._mutation_finding(info, node, origin(name), root)

    def _mutation_finding(
        self, info: "FunctionInfo", node: ast.AST, what: str, root: str
    ) -> Finding:
        return self.finding(
            info.module,
            node,
            f"`{info.display}` runs inside a forked worker (Process target "
            f"`{root}`) and mutates {what}: after fork the child writes its "
            "copy-on-write copy, so parent and worker state diverge silently "
            "— route updates through the pipe/journal, or suppress with a "
            "comment if per-process divergence is intended",
        )

    def _check_handle_read(
        self,
        info: "FunctionInfo",
        node: ast.AST,
        handles: Set[str],
        class_handles: Set[str],
        root: str,
    ) -> Iterator[Finding]:
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in handles
        ):
            yield self.finding(
                info.module,
                node,
                f"`{info.display}` runs inside a forked worker (Process "
                f"target `{root}`) and uses module-global handle `{node.id}` "
                "opened before the fork: the fd is shared with the parent, "
                "so writes interleave on one file offset — open it "
                "per-process after the fork",
            )
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in class_handles
        ):
            yield self.finding(
                info.module,
                node,
                f"`{info.display}` runs inside a forked worker (Process "
                f"target `{root}`) and uses handle attribute "
                f"`self.{node.attr}` captured from the parent: the fd is "
                "shared across the fork — close inherited handles in the "
                "child and reopen per-process",
            )

"""The policy-contract rule (SL006).

The simulator engine calls policy hooks positionally and hands policies
shared, read-only trace state; this rule pins both halves of that
contract, plus the project-wide invariant that every ``POLICIES``
registry entry resolves to a real policy class.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import _dotted, _unparse, register

if TYPE_CHECKING:
    from repro.lint.project import ProjectIndex


@register
class PolicyContractRule(Rule):
    """Policies must speak the exact hook vocabulary and never mutate the
    shared trace state the simulator hands them."""

    id = "SL006"
    severity = "error"
    summary = "policy-contract violation"

    #: Hook name -> positional parameters after ``self``.
    _CONTRACT: Dict[str, Tuple[str, ...]] = {
        "bind": ("sim",),
        "before_reference": ("cursor", "now"),
        "on_disk_idle": ("disk", "now"),
        "on_miss": ("cursor", "now"),
        "on_fetch_complete": ("disk", "service_ms"),
        "on_reference_served": ("cursor", "compute_ms"),
        "on_evict": ("block", "next_use"),
        "issue": ("block", "victim"),
        "choose_victim": ("cursor", "exclude"),
        "victim_allows": ("victim", "fetch_position", "cursor"),
    }
    _HOOK_PREFIXES = ("on_", "before_")
    #: Attributes of the simulator that are shared, read-only state.
    _SHARED_ATTRS = frozenset({"blocks", "app_blocks", "compute_ms", "trace"})
    _MUTATORS = frozenset(
        {
            "append", "extend", "insert", "remove", "pop", "clear", "sort",
            "reverse", "update", "setdefault", "popitem", "add", "discard",
        }
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    # -- per-module: check each policy class body -----------------------------

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._looks_like_policy(node):
                yield from self._check_class(module, node)

    def _looks_like_policy(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if name is not None and (
                name == "PrefetchPolicy" or name.endswith("Policy")
            ):
                return True
        return False

    def _check_class(
        self, module: LintModule, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            expected = self._CONTRACT.get(item.name)
            if expected is not None:
                yield from self._check_arity(module, node, item, expected)
            elif item.name.startswith(self._HOOK_PREFIXES):
                known = ", ".join(sorted(self._CONTRACT))
                yield self.finding(
                    module,
                    item,
                    f"{node.name}.{item.name} looks like a policy hook but is "
                    f"not part of the contract (known hooks: {known}); the "
                    "engine will never call it",
                )
        yield from self._check_mutations(module, node)

    def _check_arity(
        self,
        module: LintModule,
        cls: ast.ClassDef,
        item: ast.FunctionDef,
        expected: Tuple[str, ...],
    ) -> Iterator[Finding]:
        arguments = item.args
        if arguments.vararg is not None or arguments.kwarg is not None:
            return  # pass-through wrappers are contract-compatible
        positional = [a.arg for a in arguments.posonlyargs + arguments.args]
        if positional and positional[0] in ("self", "cls"):
            positional = positional[1:]
        required = len(positional) - len(arguments.defaults)
        if required > len(expected) or len(positional) < len(expected):
            yield self.finding(
                module,
                item,
                f"{cls.name}.{item.name} must accept exactly "
                f"({', '.join(expected)}) after self; the engine calls it "
                f"with {len(expected)} positional arguments",
            )

    def _check_mutations(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        def shared_target(value: ast.AST) -> Optional[str]:
            if isinstance(value, ast.Attribute) and value.attr in self._SHARED_ATTRS:
                return value.attr
            return None

        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    base = target.value if isinstance(target, ast.Subscript) else target
                    attr = shared_target(base)
                    if attr is not None and not isinstance(target, ast.Name):
                        yield self.finding(
                            module,
                            node,
                            f"{cls.name} mutates the shared `{attr}` sequence; "
                            "policies must treat the trace and hint view as "
                            "read-only",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in self._MUTATORS:
                    attr = shared_target(node.func.value)
                    if attr is not None:
                        yield self.finding(
                            module,
                            node,
                            f"{cls.name} calls `.{node.func.attr}()` on the "
                            f"shared `{attr}` sequence; policies must treat "
                            "the trace and hint view as read-only",
                        )

    # -- project-wide: the POLICIES registry must map to real policies --------

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        classes: Dict[str, List[str]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases: List[str] = []
                    for base in node.bases:
                        name = _dotted(base)
                        if name is not None:
                            bases.append(name.rsplit(".", 1)[-1])
                    classes.setdefault(node.name, bases)
        policy_like: Set[str] = {"PrefetchPolicy"}
        changed = True
        while changed:
            changed = False
            for name, bases in classes.items():
                if name not in policy_like and any(b in policy_like for b in bases):
                    policy_like.add(name)
                    changed = True
        registry_module = next(
            (m for m in modules if m.module == "repro.core"), None
        )
        if registry_module is None:
            return
        for node in ast.walk(registry_module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            is_policies = any(
                isinstance(t, ast.Name) and t.id == "POLICIES"
                for t in targets
            )
            if not is_policies or not isinstance(node.value, ast.Dict):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                name = _dotted(value) if value is not None else None
                if name is None:
                    continue
                short = name.rsplit(".", 1)[-1]
                if short not in policy_like:
                    label = (
                        key.value
                        if isinstance(key, ast.Constant)
                        else _unparse(key) if key is not None else "?"
                    )
                    yield self.finding(
                        registry_module,
                        value,
                        f"registered policy {label!r} maps to {short}, which "
                        "is not a PrefetchPolicy subclass visible to the "
                        "linter; every registry entry must implement the full "
                        "policy surface",
                    )

"""Async-safety rules (SL010–SL012, SL017).

The service layer (`repro.svc`, docs/SERVICE.md) runs simulations from
an asyncio event loop.  Three properties keep it correct under load and
chaos testing, and all three are invisible to single-file pattern
matching:

* nothing reachable from an ``async def`` may block the loop thread —
  a blocking call two hops down a sync helper stalls every in-flight
  request just as surely as ``time.sleep`` inline (SL010, via the
  project call summaries);
* a *sync* lock held across an ``await`` serializes the loop with
  whatever thread shares the lock and deadlocks under contention
  (SL011);
* a coroutine or task created and dropped on the floor is cancelled by
  the garbage collector mid-flight and its exception is never observed
  (SL012) — the asyncio docs require holding a strong reference.

PR 10 adds the hostile-network variant: in ``repro.svc`` every stream
read must carry a deadline and every ``writer.drain()`` must actually be
awaited (SL017) — an undeadlined ``await reader.readuntil(...)`` is a
slowloris parking spot, and an un-awaited ``drain()`` silently discards
the one backpressure signal asyncio gives a writer.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.lint.astutil import receiver_name, scoped_walk
from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import _dotted, register

if TYPE_CHECKING:
    from repro.lint.project import ProjectIndex


# --------------------------------------------------------------------------------------
# SL010 — blocking calls reachable from async code
# --------------------------------------------------------------------------------------


@register
class BlockingInAsyncRule(Rule):
    """An event-loop thread that blocks stalls *every* in-flight request.

    Roots at every ``async def`` in the project and follows the call
    summaries through sync helpers, so ``await``-free blocking I/O is
    found even when it hides behind ``self.store.get(...)`` →
    ``ResultStore.get`` → ``open(...)``.
    """

    id = "SL010"
    severity = "error"
    summary = "blocking call reachable from async code"

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        for info in project.async_functions():
            if not info.module.module.startswith("repro"):
                continue
            for site in info.calls:
                if site.awaited:
                    continue
                if site.blocking is not None:
                    yield self.finding(
                        info.module,
                        site.node,
                        f"async `{info.display}` calls blocking "
                        f"{site.blocking} on the event loop; every in-flight "
                        "request stalls — await an async equivalent or move "
                        "it off-loop (asyncio.to_thread / run_in_executor)",
                    )
                    continue
                for target in site.targets:
                    target_info = project.functions.get(target)
                    chain = project.blocking_chain(target)
                    if target_info is None or target_info.is_async or chain is None:
                        continue
                    witness = " -> ".join((target_info.display,) + chain)
                    yield self.finding(
                        info.module,
                        site.node,
                        f"async `{info.display}` calls `{site.display}()`, "
                        f"which blocks the event loop via {witness}; move the "
                        "blocking step off-loop (asyncio.to_thread / "
                        "run_in_executor) or make the helper async",
                    )
                    break


# --------------------------------------------------------------------------------------
# SL011 — sync lock held across an await point
# --------------------------------------------------------------------------------------


@register
class LockAcrossAwaitRule(Rule):
    """``with self._lock:`` around an ``await`` parks the loop thread while
    holding a lock other threads want — the classic asyncio deadlock."""

    id = "SL011"
    severity = "error"
    summary = "sync lock held across an await point"

    _LOCKISH = re.compile(r"lock", re.IGNORECASE)

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for stmt in scoped_walk(node):
                # Sync `with` only: `async with` uses an asyncio lock,
                # which suspends instead of blocking and is the fix.
                if not isinstance(stmt, ast.With):
                    continue
                if not self._holds_lock(stmt):
                    continue
                awaits = [
                    child
                    for body_stmt in stmt.body
                    for child in scoped_walk(body_stmt)
                    if isinstance(child, (ast.Await, ast.AsyncFor, ast.AsyncWith))
                ]
                if awaits:
                    yield self.finding(
                        module,
                        stmt,
                        f"sync lock held across `await` in async "
                        f"`{node.name}`: the loop thread suspends while "
                        "holding the lock, deadlocking any thread that wants "
                        "it — release before awaiting or use asyncio.Lock "
                        "with `async with`",
                    )

    def _holds_lock(self, stmt: ast.With) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = receiver_name(expr)
            if name is not None and self._LOCKISH.search(name):
                return True
        return False


# --------------------------------------------------------------------------------------
# SL012 — fire-and-forget coroutines and tasks
# --------------------------------------------------------------------------------------


@register
class FireAndForgetRule(Rule):
    """A task nobody references can be garbage-collected mid-flight, and an
    exception nobody retrieves is only reported at interpreter exit."""

    id = "SL012"
    severity = "error"
    summary = "un-awaited coroutine / unreferenced fire-and-forget task"

    _TASK_MAKERS = frozenset({"ensure_future", "create_task"})
    #: TaskGroup-style receivers keep their own strong references.
    _GROUPISH = re.compile(r"group|tg\b", re.IGNORECASE)

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def check(self, module: LintModule) -> Iterator[Finding]:
        """The task half: a bare ``ensure_future``/``create_task`` statement
        drops the only reference to the task."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            name = _dotted(call.func)
            if name is None:
                continue
            last = name.rsplit(".", 1)[-1]
            if last not in self._TASK_MAKERS:
                continue
            if isinstance(call.func, ast.Attribute):
                receiver = receiver_name(call.func.value)
                if receiver is not None and self._GROUPISH.search(receiver):
                    continue  # asyncio.TaskGroup holds its own references
            yield self.finding(
                module,
                node,
                f"`{last}(...)` result is dropped: the event loop keeps only "
                "a weak reference, so the task can be garbage-collected "
                "mid-flight and its exception is never consumed — keep it in "
                "a collection and discard via add_done_callback",
            )

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        """The coroutine half: calling a project ``async def`` as a bare
        statement creates a coroutine that is never awaited."""
        for info in project.functions.values():
            if not info.module.module.startswith("repro"):
                continue
            for site in info.calls:
                if site.awaited:
                    continue
                parent = info.module.parent(site.node)
                if not isinstance(parent, ast.Expr):
                    continue
                async_targets: List[str] = [
                    target
                    for target in site.targets
                    if target in project.functions
                    and project.functions[target].is_async
                ]
                if async_targets:
                    callee = project.functions[async_targets[0]].display
                    yield self.finding(
                        info.module,
                        site.node,
                        f"`{site.display}()` calls async `{callee}` without "
                        "awaiting it: the coroutine is created, never runs, "
                        "and is destroyed with a RuntimeWarning — `await` it "
                        "or schedule it as a referenced task",
                    )


# --------------------------------------------------------------------------------------
# SL017 — undeadlined stream reads and unawaited drains in repro.svc
# --------------------------------------------------------------------------------------


@register
class UnboundedStreamIoRule(Rule):
    """The service's wire protocol must assume a hostile peer.

    ``await reader.readuntil(...)`` with no deadline lets a slowloris
    client park the handler coroutine (and whatever admission slot it
    holds) forever; ``writer.drain()`` without ``await`` throws away the
    flow-control signal, so a stalled consumer grows the transport
    buffer without bound.  Scoped to ``repro.svc`` — the layer whose
    job is talking to untrusted sockets (docs/SERVICE.md, "Overload and
    hostile networks").
    """

    id = "SL017"
    severity = "error"
    summary = "undeadlined stream read / unawaited drain in repro.svc"

    _READ_METHODS = frozenset(
        {"read", "readline", "readuntil", "readexactly"}
    )
    #: Receivers that look like asyncio stream readers; a plain file
    #: handle's ``read()`` is SL010's department, not ours.
    _READERISH = re.compile(r"reader|stream", re.IGNORECASE)
    #: Deadline wrappers that make a read bounded.
    _DEADLINE_CALLS = frozenset({"wait_for", "timeout", "timeout_at"})

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro.svc")

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in scoped_walk(node):
                if not isinstance(child, ast.Call):
                    continue
                if not isinstance(child.func, ast.Attribute):
                    continue
                attr = child.func.attr
                if attr in self._READ_METHODS:
                    yield from self._check_read(module, node, child, attr)
                elif attr == "drain":
                    yield from self._check_drain(module, node, child)

    def _check_read(
        self, module: LintModule, func: ast.AsyncFunctionDef,
        call: ast.Call, attr: str,
    ) -> Iterator[Finding]:
        assert isinstance(call.func, ast.Attribute)
        receiver = receiver_name(call.func.value)
        if receiver is None or not self._READERISH.search(receiver):
            return
        parent = module.parent(call)
        if isinstance(parent, ast.Await):
            # `await reader.read(...)` directly: bounded only if an
            # enclosing `async with asyncio.timeout(...)` covers it.
            if not self._inside_timeout_block(module, parent):
                yield self.finding(
                    module,
                    call,
                    f"`await {receiver}.{attr}(...)` has no deadline: a "
                    "peer that stops sending parks this coroutine forever "
                    "— wrap it in `asyncio.wait_for(...)` (or an "
                    "`asyncio.timeout()` block) with a protocol-limit "
                    "timeout",
                )
            return
        # Not directly awaited: fine when it is the argument of a
        # deadline wrapper (`wait_for(reader.read(...), t)`), a bug when
        # the coroutine is simply dropped.
        if self._deadline_ancestor(module, call) is None:
            if not self._eventually_awaited(module, call):
                yield self.finding(
                    module,
                    call,
                    f"`{receiver}.{attr}(...)` creates a coroutine that "
                    "is never awaited — the read never happens",
                )

    def _check_drain(
        self, module: LintModule, func: ast.AsyncFunctionDef, call: ast.Call
    ) -> Iterator[Finding]:
        assert isinstance(call.func, ast.Attribute)
        receiver = receiver_name(call.func.value)
        if not self._eventually_awaited(module, call):
            target = f"{receiver}.drain" if receiver else "drain"
            yield self.finding(
                module,
                call,
                f"`{target}()` is not awaited: the backpressure signal is "
                "discarded and the transport buffer grows without bound "
                "for a stalled peer — `await` it (ideally under "
                "`asyncio.wait_for`)",
            )

    # -- ancestry helpers ---------------------------------------------------

    def _eventually_awaited(
        self, module: LintModule, node: ast.AST
    ) -> bool:
        """True when an ``Await`` sits between the node and its statement
        (covers ``await x.drain()`` and ``await wait_for(x.drain(), t)``)."""
        current: Optional[ast.AST] = module.parent(node)
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(current, ast.Await):
                return True
            current = module.parent(current)
        return False

    def _deadline_ancestor(
        self, module: LintModule, node: ast.AST
    ) -> Optional[ast.Call]:
        """The enclosing ``asyncio.wait_for(...)``-style call, if any."""
        current: Optional[ast.AST] = module.parent(node)
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(current, ast.Call):
                name = _dotted(current.func)
                if name is not None and (
                    name.rsplit(".", 1)[-1] in self._DEADLINE_CALLS
                ):
                    return current
            current = module.parent(current)
        return None

    def _inside_timeout_block(
        self, module: LintModule, node: ast.AST
    ) -> bool:
        """True inside ``async with asyncio.timeout(...):`` (3.11+) — the
        block form of a deadline."""
        current: Optional[ast.AST] = module.parent(node)
        while current is not None and not isinstance(
            current, (ast.AsyncFunctionDef, ast.FunctionDef)
        ):
            if isinstance(current, ast.AsyncWith):
                for item in current.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        name = _dotted(expr.func)
                        if name is not None and (
                            name.rsplit(".", 1)[-1] in self._DEADLINE_CALLS
                        ):
                            return True
            current = module.parent(current)
        return False

"""Determinism and hot-path rules (SL001–SL005, SL007–SL009).

These are the single-module rules the analyzer launched with: each one
defends the bit-identical replay guarantee (or a hot-path performance
property) with facts visible inside one file.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import _call_name, _dotted, _unparse, register

# --------------------------------------------------------------------------------------
# SL001 — unseeded / global random use
# --------------------------------------------------------------------------------------


@register
class UnseededRandomRule(Rule):
    """Global-`random` calls make runs depend on interpreter-wide state."""

    id = "SL001"
    severity = "error"
    summary = "unseeded or global `random` use"

    #: Names importable from `random` that read or mutate the global RNG.
    _GLOBAL_FUNCS = frozenset(
        {
            "betavariate", "choice", "choices", "expovariate", "gammavariate",
            "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
            "paretovariate", "randbytes", "randint", "random", "randrange",
            "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
            "vonmisesvariate", "weibullvariate",
        }
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in self._GLOBAL_FUNCS:
                        yield self.finding(
                            module,
                            node,
                            f"`from random import {alias.name}` pulls in the "
                            "global RNG; use a seeded random.Random instance",
                        )
                    elif alias.name == "SystemRandom":
                        yield self.finding(
                            module,
                            node,
                            "random.SystemRandom is OS entropy and can never "
                            "be reproduced; use a seeded random.Random",
                        )
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            base = node.func.value
            if not (isinstance(base, ast.Name) and base.id in aliases):
                continue
            attr = node.func.attr
            if attr == "Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed draws from OS state; "
                        "pass an explicit seed",
                    )
            elif attr == "SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom is OS entropy and can never be "
                    "reproduced; use a seeded random.Random",
                )
            elif attr in self._GLOBAL_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"call to global random.{attr}() depends on interpreter-"
                    "wide RNG state; use a seeded random.Random instance",
                )


# --------------------------------------------------------------------------------------
# SL002 — wall-clock reads in simulation code
# --------------------------------------------------------------------------------------


@register
class WallClockRule(Rule):
    """Simulated time must come from the event loop, never the host clock."""

    id = "SL002"
    severity = "error"
    summary = "wall-clock read outside repro.perf"

    _TIME_FUNCS = frozenset(
        {
            "time", "time_ns", "perf_counter", "perf_counter_ns",
            "monotonic", "monotonic_ns", "process_time", "process_time_ns",
            "clock", "thread_time", "thread_time_ns",
        }
    )
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    #: Modules allowed to read the host clock.  ``repro.perf`` measures the
    #: simulator's own wall-clock cost; ``repro.obs.export`` may stamp trace
    #: files with the *generation* time (``stamp=True``) — simulated
    #: timestamps inside the trace still come only from the event loop.
    #: ``repro.runner`` is orchestration, not simulation: it times cells,
    #: enforces per-cell timeouts, and backs off crash retries against the
    #: host clock, and its bit-identity tests prove none of that can leak
    #: into simulated results.  ``repro.svc`` is the same kind of
    #: orchestration one layer up — request timeouts, breaker cooldowns,
    #: and request-latency histograms are host-clock by nature, and the
    #: service's bit-identity chaos tests prove results stay unaffected.
    #: ``repro.lint`` times the *analyzer itself* (the CI/pre-commit speed
    #: budget in LintReport.elapsed_s) and never touches simulation state.
    #: ``repro.obs.svc`` is the service-tier tracer: its spans measure the
    #: *host* request path (admission waits, worker execute) on the
    #: monotonic clock by design, and the golden-digest tests prove the
    #: tracer never reaches simulated results.  ``repro.loadgen`` drives
    #: the service from outside over real sockets — request latencies
    #: and open-loop pacing are host-clock by definition, and its seeded
    #: plan (not its timings) is the reproducible artifact.
    _ALLOWED = ("repro.perf", "repro.obs.export", "repro.obs.svc",
                "repro.runner", "repro.svc", "repro.lint",
                "repro.loadgen")

    def applies_to(self, module: LintModule) -> bool:
        name = module.module
        if not name.startswith("repro"):
            return False
        # Package-boundary match: "repro.runner.pool" is exempt,
        # "repro.runners" is not.
        return not any(
            name == allowed or name.startswith(allowed + ".")
            for allowed in self._ALLOWED
        )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_FUNCS:
                        yield self.finding(
                            module,
                            node,
                            f"`from time import {alias.name}` is a wall-clock "
                            "read; simulation code must use simulated time "
                            "(repro.perf owns host-clock profiling)",
                        )
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            root, attr = name.split(".", 1)[0], node.func.attr
            if root == "time" and attr in self._TIME_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read time.{attr}(); simulation code must use "
                    "simulated time (repro.perf owns host-clock profiling)",
                )
            elif root in ("datetime", "date") and attr in self._DATETIME_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {name}(); simulation code must use "
                    "simulated time (repro.perf owns host-clock profiling)",
                )


# --------------------------------------------------------------------------------------
# SL003 — unsorted iteration over set-typed values in core/disk
# --------------------------------------------------------------------------------------


class _SetReturnCollector(ast.NodeVisitor):
    """Names of same-module functions whose return value is set-typed."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Return)
                and child.value is not None
                and _is_set_literalish(child.value)
            ):
                self.names.add(node.name)
                break
        self.generic_visit(node)


def _is_set_literalish(node: ast.AST) -> bool:
    """Expressions that are unmistakably sets, with no dataflow needed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class UnorderedIterationRule(Rule):
    """Set iteration order is arbitrary; in core/disk it can reach Results."""

    id = "SL003"
    severity = "error"
    summary = "unsorted iteration over a set/dict.keys() in core/disk"

    #: Reductions whose result cannot depend on iteration order.
    _ORDER_FREE = frozenset(
        {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
    )
    #: Wrappers that preserve the inner iterable's order — look through them.
    _TRANSPARENT = frozenset({"enumerate", "reversed", "list", "tuple", "iter"})
    #: Set-typed attributes of the simulator's shared objects, known by name.
    _KNOWN_SET_ATTRS = frozenset(
        {"resident", "in_flight", "present", "lost_blocks", "protected_blocks"}
    )
    #: Set operators (set OP set is a set).
    _SET_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    #: Set methods returning sets.
    _SET_METHODS = frozenset(
        {"intersection", "union", "difference", "symmetric_difference", "copy"}
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith(("repro.core", "repro.disk"))

    def check(self, module: LintModule) -> Iterator[Finding]:
        collector = _SetReturnCollector()
        collector.visit(module.tree)
        set_returning = collector.names
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(module, scope, set_returning)

    def _check_scope(
        self, module: LintModule, scope: ast.AST, set_returning: Set[str]
    ) -> Iterator[Finding]:
        tainted = self._tainted_names(scope, set_returning)
        own_functions = {
            child
            for child in ast.walk(scope)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not scope
        }
        nested: Set[ast.AST] = set()
        for function in own_functions:
            nested.update(ast.walk(function))
        for node in ast.walk(scope):
            if node in nested:
                continue  # reported when the nested scope is processed
            iterables: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if self._inside_order_free_call(module, node):
                    continue
                iterables.extend(gen.iter for gen in node.generators)
            else:
                continue
            for iterable in iterables:
                inner = self._look_through(iterable)
                reason = self._set_reason(inner, tainted, set_returning)
                if reason is not None:
                    yield self.finding(
                        module,
                        iterable,
                        f"iteration over {reason} `{_unparse(inner)}` has "
                        "arbitrary order; iterate `sorted(...)` so results "
                        "stay bit-identical",
                    )

    def _tainted_names(
        self, scope: ast.AST, set_returning: Set[str]
    ) -> Set[str]:
        tainted: Set[str] = set()
        assignments: List[Tuple[ast.AST, ast.AST]] = []
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    assignments.append((target, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assignments.append((node.target, node.value))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.op, self._SET_OPS):
                    assignments.append((node.target, node.value))
        for _ in range(4):  # tiny fixpoint for chained assignments
            changed = False
            for target, value in assignments:
                if not isinstance(target, ast.Name):
                    continue
                if target.id in tainted:
                    continue
                if self._set_reason(value, tainted, set_returning) is not None:
                    tainted.add(target.id)
                    changed = True
            if not changed:
                break
        return tainted

    def _set_reason(
        self, node: ast.AST, tainted: Set[str], set_returning: Set[str]
    ) -> Optional[str]:
        """A short description of why ``node`` is set-typed, or None."""
        if _is_set_literalish(node):
            return "the set expression"
        if isinstance(node, ast.Name) and node.id in tainted:
            return "the set-typed local"
        if isinstance(node, ast.Attribute) and node.attr in self._KNOWN_SET_ATTRS:
            return "the set-typed attribute"
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            if (
                self._set_reason(node.left, tainted, set_returning) is not None
                or self._set_reason(node.right, tainted, set_returning) is not None
            ):
                return "the set expression"
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in set_returning:
                return "the set-returning call"
            if isinstance(func, ast.Attribute):
                if func.attr == "keys":
                    return "the dict-keys view"
                if func.attr in set_returning or func.attr in self._KNOWN_SET_ATTRS:
                    return "the set-returning call"
                if (
                    func.attr in self._SET_METHODS
                    and self._set_reason(func.value, tainted, set_returning)
                    is not None
                ):
                    return "the set expression"
        return None

    def _look_through(self, node: ast.AST) -> ast.AST:
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._TRANSPARENT
            and node.args
        ):
            node = node.args[0]
        return node

    def _inside_order_free_call(
        self, module: LintModule, node: ast.AST
    ) -> bool:
        parent = module.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in self._ORDER_FREE
        )


# --------------------------------------------------------------------------------------
# SL004 — float equality on simulated-time expressions
# --------------------------------------------------------------------------------------


@register
class TimeEqualityRule(Rule):
    """Simulated times are float sums; `==`/`!=` on them is fragile."""

    id = "SL004"
    severity = "warning"
    summary = "float ==/!= on a simulated-time expression"

    _TIME_SUFFIXES = ("_ms", "_ns", "_time")
    _TIME_NAMES = frozenset(
        {"now", "elapsed", "deadline", "when", "stall_ms", "completion"}
    )
    _TIME_SUBSTRING = re.compile(r"(^|_)time(s)?(_|$)")

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith(
            ("repro.core", "repro.disk", "repro.faults", "repro.theory")
        )

    _TRUNCATIONS = frozenset({"int", "round", "floor", "ceil", "trunc"})

    def _is_truncation(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = _call_name(node)
        return name is not None and name.rsplit(".", 1)[-1] in self._TRUNCATIONS

    def _is_timey(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        if name in self._TIME_NAMES:
            return True
        if any(name.endswith(suffix) for suffix in self._TIME_SUFFIXES):
            return True
        return bool(self._TIME_SUBSTRING.search(name))

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None`-style and string compares are not time math.
                if any(
                    isinstance(side, ast.Constant)
                    and not isinstance(side.value, (int, float))
                    for side in (left, right)
                ):
                    continue
                # Integrality checks (`x != int(x)`) are exact and correct.
                if any(self._is_truncation(side) for side in (left, right)):
                    continue
                timey = next(
                    (side for side in (left, right) if self._is_timey(side)), None
                )
                if timey is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node,
                        f"`{symbol}` on simulated-time value "
                        f"`{_unparse(timey)}`: float accumulation makes exact "
                        "equality fragile; compare with an ordering or a "
                        "tolerance",
                    )


# --------------------------------------------------------------------------------------
# SL005 — O(n) list head operations in hot paths
# --------------------------------------------------------------------------------------


@register
class ListHeadRule(Rule):
    """`list.pop(0)` / `insert(0, …)` are O(n) — the bug class PR 2 removed."""

    id = "SL005"
    severity = "warning"
    summary = "list.pop(0)/insert(0, ...) in a hot path"

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith(("repro.core", "repro.disk"))

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if not node.args:
                continue
            first = node.args[0]
            is_zero = isinstance(first, ast.Constant) and first.value == 0
            if attr == "pop" and is_zero:
                yield self.finding(
                    module,
                    node,
                    "`pop(0)` is O(n) per call on a list; use "
                    "collections.deque.popleft() or an index cursor",
                )
            elif attr == "insert" and is_zero and len(node.args) >= 2:
                yield self.finding(
                    module,
                    node,
                    "`insert(0, ...)` is O(n) per call on a list; use "
                    "collections.deque.appendleft() or append+reverse",
                )


# --------------------------------------------------------------------------------------
# SL007 — mutable default arguments
# --------------------------------------------------------------------------------------


@register
class MutableDefaultRule(Rule):
    """A mutable default is shared across calls — state leaks between runs."""

    id = "SL007"
    severity = "error"
    summary = "mutable default argument"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None and name.rsplit(".", 1)[-1] in self._MUTABLE_CALLS:
                return True
        return False

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            defaults = list(arguments.defaults) + [
                d for d in arguments.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default `{_unparse(default)}` in "
                        f"{node.name}() is shared across calls; default to "
                        "None and create it in the body",
                    )


# --------------------------------------------------------------------------------------
# SL008 — bare except swallowing fault-injection errors
# --------------------------------------------------------------------------------------


@register
class BareExceptRule(Rule):
    """`except:` hides repro.faults errors (UnrecoverableReadError) and
    engine accounting bugs alike."""

    id = "SL008"
    severity = "error"
    summary = "bare except / except BaseException"

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` swallows everything, including "
                    "fault-injection errors from repro.faults "
                    "(UnrecoverableReadError); catch the specific exception",
                )
            else:
                names = (
                    node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
                )
                for name_node in names:
                    name = _dotted(name_node)
                    if name is not None and name.rsplit(".", 1)[-1] == "BaseException":
                        yield self.finding(
                            module,
                            node,
                            "`except BaseException` swallows everything, "
                            "including fault-injection errors from "
                            "repro.faults; catch the specific exception",
                        )


# --------------------------------------------------------------------------------------
# SL009 — identity comparison against float sentinels
# --------------------------------------------------------------------------------------


@register
class FloatSentinelIdentityRule(Rule):
    """``x is INFINITE`` only works while every producer returns the *same*
    float object; any arithmetic, numpy scalar, or ``float("inf")`` built
    elsewhere silently breaks the check.  The simulator core uses the exact
    integer sentinel ``index.never`` instead — compare with ``==``/``>=``."""

    id = "SL009"
    severity = "error"
    summary = "`is` comparison against a float sentinel (INFINITE / float('inf'))"

    SENTINEL_NAMES = {"INFINITE", "INF", "INFINITY", "NAN"}

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def _is_float_sentinel(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _dotted(node)
            if name is not None:
                return name.rsplit(".", 1)[-1].upper() in self.SENTINEL_NAMES
            return False
        if isinstance(node, ast.Call):
            if _call_name(node) == "float" and len(node.args) == 1:
                arg = node.args[0]
                return isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        return False

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Is, ast.IsNot)):
                    continue
                if self._is_float_sentinel(left) or self._is_float_sentinel(right):
                    yield self.finding(
                        module,
                        node,
                        f"`{_unparse(node)}` relies on float object identity; "
                        "floats from arithmetic, numpy, or a fresh "
                        "float('inf') are distinct objects. Compare against "
                        "the integer sentinel `index.never` (or use == / "
                        "math.isinf) instead",
                    )

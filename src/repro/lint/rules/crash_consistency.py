"""The crash-consistency protocol rule (SL013).

Durable state in this repo survives ``kill -9`` because every writer
follows one protocol (docs/FAULTS.md, docs/RUNNER.md, docs/SERVICE.md):

* **Atomic replace** — write to a temp file in the same directory, then
  ``flush`` → ``os.fsync(fd)`` → ``os.replace(tmp, final)``.  Skipping
  the fsync leaves a window where the rename is durable but the *data*
  is not: after a crash the final path exists with truncated or empty
  contents — the exact corruption ``write_json_atomic`` exists to
  prevent.
* **Append-only logs** — the runner journal and the store log are only
  ever opened with mode ``"a"``; a truncating open silently discards
  the crash-recovery history.

SL013 runs the forward dataflow from :mod:`repro.lint.dataflow` over
every function that renames a file, tracking each write-handle through
the states OPENED → WRITTEN → FLUSHED → FSYNCED.  The fsync must name
the *same* handle's fd (``os.fsync(other.fileno())`` does not make this
one durable), and a write through a handle whose path was already
renamed is flagged as a write-after-rename.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import unparse
from repro.lint.dataflow import AbstractState, ForwardAnalysis
from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import _dotted, register

# Handle protocol states, in order.
_OPENED, _WRITTEN, _FLUSHED, _FSYNCED = range(4)

_STATE_WORDS = {
    _OPENED: "never written",
    _WRITTEN: "written but never flushed or fsynced",
    _FLUSHED: "flushed but never fsynced",
}

_TRUNCATING_MODES = frozenset({"w", "wb", "wt", "w+", "wb+", "w+b"})

#: Path expressions that denote the append-only crash-recovery logs.
_APPEND_ONLY = re.compile(
    r"journal_path|log_path|JOURNAL_NAME|STORE_LOG|journal\.jsonl|log\.jsonl"
)

_DUMPERS = frozenset({"dump", "write", "writelines"})


class _Handle:
    __slots__ = ("state", "path_text", "closed")

    def __init__(self, path_text: str) -> None:
        self.state = _OPENED
        self.path_text = path_text
        self.closed = False

    def clone(self) -> "_Handle":
        copy = _Handle(self.path_text)
        copy.state = self.state
        copy.closed = self.closed
        return copy


class _ProtocolState(AbstractState):
    """Per-variable handle facts plus the set of already-renamed paths.

    Findings and the dedup set are *shared* between branch copies on
    purpose: a protocol violation on either arm of an ``if`` is real.
    """

    def __init__(self) -> None:
        self.handles: Dict[str, _Handle] = {}
        self.fd_aliases: Dict[str, str] = {}  # fd var -> handle var
        self.renamed: Set[str] = set()
        self.findings: List[Tuple[ast.AST, str]] = []
        self._seen: Set[Tuple[int, str]] = set()

    def copy(self) -> "_ProtocolState":
        twin = _ProtocolState()
        twin.handles = {name: h.clone() for name, h in self.handles.items()}
        twin.fd_aliases = dict(self.fd_aliases)
        twin.renamed = set(self.renamed)
        twin.findings = self.findings
        twin._seen = self._seen
        return twin

    def join(self, other: AbstractState) -> None:
        assert isinstance(other, _ProtocolState)
        for name, theirs in other.handles.items():
            ours = self.handles.get(name)
            if ours is None:
                self.handles[name] = theirs
            else:
                ours.state = min(ours.state, theirs.state)
                ours.closed = ours.closed and theirs.closed
        self.fd_aliases.update(other.fd_aliases)
        self.renamed |= other.renamed

    def report(self, node: ast.AST, message: str) -> None:
        key = (getattr(node, "lineno", 0), message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append((node, message))


class _ProtocolAnalysis(ForwardAnalysis):
    """Interprets open/write/flush/fsync/replace against _ProtocolState."""

    def __init__(self) -> None:
        self._with_bindings: Dict[ast.stmt, List[str]] = {}

    # -- statement interpretation -----------------------------------------

    def transfer(self, stmt: ast.stmt, state: AbstractState) -> None:
        assert isinstance(state, _ProtocolState)
        if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            return  # headers carry no protocol effects in this codebase
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._bind(target.id, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, stmt.value, state)
        for call in self._calls_in(stmt):
            self._interpret_call(call, state)

    def enter_with(self, stmt: ast.stmt, state: AbstractState) -> None:
        assert isinstance(state, _ProtocolState)
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        bound: List[str] = []
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(item.optional_vars, ast.Name)
                and isinstance(expr, ast.Call)
                and _is_open(expr)
            ):
                name = item.optional_vars.id
                state.handles[name] = _Handle(_open_path_text(expr))
                bound.append(name)
        self._with_bindings[stmt] = bound

    def exit_with(self, stmt: ast.stmt, state: AbstractState) -> None:
        assert isinstance(state, _ProtocolState)
        for name in self._with_bindings.get(stmt, []):
            handle = state.handles.get(name)
            if handle is not None:
                handle.closed = True
                # close() flushes Python's buffer to the OS — data is in
                # the page cache but still not durable without fsync.
                if handle.state == _WRITTEN:
                    handle.state = _FLUSHED

    # -- helpers -----------------------------------------------------------

    def _bind(self, name: str, value: ast.AST, state: _ProtocolState) -> None:
        if isinstance(value, ast.Call) and _is_open(value):
            state.handles[name] = _Handle(_open_path_text(value))
            return
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "fileno"
        ):
            receiver = value.func.value
            if isinstance(receiver, ast.Name) and receiver.id in state.handles:
                state.fd_aliases[name] = receiver.id

    def _calls_in(self, stmt: ast.stmt) -> Iterator[ast.Call]:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node

    def _interpret_call(self, call: ast.Call, state: _ProtocolState) -> None:
        func = call.func
        name = _dotted(func)
        # h.write(...) / h.flush() / json.dump(payload, h)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver, method = func.value.id, func.attr
            handle = state.handles.get(receiver)
            if handle is not None:
                if method in ("write", "writelines"):
                    self._write(call, handle, state)
                    return
                if method == "flush":
                    if handle.state == _WRITTEN:
                        handle.state = _FLUSHED
                    return
                if method == "close":
                    handle.closed = True
                    if handle.state == _WRITTEN:
                        handle.state = _FLUSHED
                    return
        if name is None:
            return
        last = name.rsplit(".", 1)[-1]
        # json.dump(obj, h) — writing through an argument handle.
        if last == "dump" and len(call.args) >= 2:
            sink = call.args[1]
            if isinstance(sink, ast.Name) and sink.id in state.handles:
                self._write(call, state.handles[sink.id], state)
            return
        if name in ("os.fsync", "os.fdatasync") and call.args:
            handle = self._handle_for_fd(call.args[0], state)
            if handle is not None and handle.state in (_WRITTEN, _FLUSHED):
                handle.state = _FSYNCED
            return
        if name in ("os.replace", "os.rename") and len(call.args) >= 2:
            src_text = unparse(call.args[0])
            handle = next(
                (
                    h
                    for h in state.handles.values()
                    if h.path_text == src_text and h.state < _FSYNCED
                ),
                None,
            )
            if handle is not None:
                word = _STATE_WORDS.get(handle.state, "not fsynced")
                state.report(
                    call,
                    f"`{name}({src_text}, ...)` publishes a file that was "
                    f"{word}: after a crash the rename can be durable while "
                    "the data is not — flush and os.fsync the handle's own "
                    "fd before renaming (see write_json_atomic)",
                )
            state.renamed.add(src_text)

    def _write(self, call: ast.Call, handle: _Handle, state: _ProtocolState) -> None:
        if handle.path_text in state.renamed:
            state.report(
                call,
                f"write to `{handle.path_text}` after it was already renamed "
                "into place: the published file is being modified in place, "
                "losing atomic-replace crash safety",
            )
        handle.state = _WRITTEN

    def _handle_for_fd(
        self, arg: ast.AST, state: _ProtocolState
    ) -> Optional[_Handle]:
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "fileno"
            and isinstance(arg.func.value, ast.Name)
        ):
            return state.handles.get(arg.func.value.id)
        if isinstance(arg, ast.Name):
            via_alias = state.fd_aliases.get(arg.id)
            if via_alias is not None:
                return state.handles.get(via_alias)
            return state.handles.get(arg.id)
        return None


def _is_open(call: ast.Call) -> bool:
    name = _dotted(call.func)
    return name in ("open", "io.open")


def _open_path_text(call: ast.Call) -> str:
    if call.args:
        return unparse(call.args[0])
    for keyword in call.keywords:
        if keyword.arg == "file":
            return unparse(keyword.value)
    return "<unknown>"


def _open_mode(call: ast.Call) -> str:
    if len(call.args) >= 2:
        mode = call.args[1]
    else:
        mode = next((k.value for k in call.keywords if k.arg == "mode"), None)
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "r"


@register
class CrashConsistencyRule(Rule):
    """The write → flush → fsync → ``os.replace`` protocol, checked by
    forward dataflow over every renaming function."""

    id = "SL013"
    severity = "error"
    summary = "crash-consistency protocol violation (fsync/rename/append-only)"

    def applies_to(self, module: LintModule) -> bool:
        return module.module.startswith("repro")

    def check(self, module: LintModule) -> Iterator[Finding]:
        yield from self._check_append_only(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._renames_files(node):
                continue
            analysis = _ProtocolAnalysis()
            state = _ProtocolState()
            analysis.analyze(node, state)
            for site, message in state.findings:
                yield self.finding(module, site, message)

    def _renames_files(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in ("os.replace", "os.rename"):
                    return True
        return False

    def _check_append_only(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_open(node)):
                continue
            mode = _open_mode(node)
            if mode not in _TRUNCATING_MODES:
                continue
            path_text = _open_path_text(node)
            if _APPEND_ONLY.search(path_text):
                yield self.finding(
                    module,
                    node,
                    f"truncating open (mode {mode!r}) of append-only log "
                    f"`{path_text}`: the crash-recovery history is the whole "
                    "point of the log — open with mode 'a' and fsync appends",
                )

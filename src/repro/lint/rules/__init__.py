"""The simlint rule catalogue (SL001–SL017).

Every rule defends one facet of the project's bit-identical guarantee,
the policy contract, or the crash/concurrency invariants of the runner
and service layers.  docs/LINTING.md explains each rule's rationale and
how to fix or suppress a finding.

The catalogue is split by the invariant family each rule defends:

``determinism``
    SL001–SL005, SL007–SL009 — single-module determinism and hot-path
    rules carried over from the original rule pack.
``policy``
    SL006 — the policy hook contract and the ``POLICIES`` registry.
``async_safety``
    SL010–SL012, SL017 — nothing blocking on the event loop, no locks
    held across ``await``, no fire-and-forget coroutines, and (in
    ``repro.svc``) no stream read without a deadline or ``drain()``
    without an ``await``.
``crash_consistency``
    SL013 — the write → flush → fsync → ``os.replace`` protocol and
    append-only log discipline.
``concurrency``
    SL014 — no shared mutable state across the ``fork`` boundary.
``layering``
    SL015, SL016 — the core/disk layers never import orchestration
    layers, and never log or print.

Importing this package imports every family, so ``all_rules()`` always
returns the full catalogue in SLxxx order.
"""

from __future__ import annotations

from typing import List, Type

from repro.lint.astutil import call_name as _call_name
from repro.lint.astutil import dotted as _dotted
from repro.lint.astutil import unparse as _unparse
from repro.lint.engine import Rule

__all__ = ["ALL_RULES", "register", "all_rules", "_dotted", "_call_name", "_unparse"]

ALL_RULES: List[Type[Rule]] = []


def register(rule: Type[Rule]) -> Type[Rule]:
    ALL_RULES.append(rule)
    return rule


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in SLxxx order."""
    return [rule() for rule in sorted(ALL_RULES, key=lambda r: r.id)]


# Rule modules self-register on import; keep these at the bottom so the
# registry machinery above exists when they run.
from repro.lint.rules import determinism  # noqa: E402,F401  (registration import)
from repro.lint.rules import policy  # noqa: E402,F401
from repro.lint.rules import async_safety  # noqa: E402,F401
from repro.lint.rules import crash_consistency  # noqa: E402,F401
from repro.lint.rules import concurrency  # noqa: E402,F401
from repro.lint.rules import layering  # noqa: E402,F401

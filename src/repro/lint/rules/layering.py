"""The core-purity layering rules (SL015, SL016).

ROADMAP item 1 keeps the hot core compilable and benchmarkable on its
own: ``repro.core`` and ``repro.disk`` must import *nothing* from the
orchestration layers (``obs``, ``runner``, ``svc``, ``perf``,
``analysis``, ``lint``, ``cli``).  A single stray module-level import
drags the whole service stack — and its transitive stdlib surface —
into every simulation process and into the mypy-strict core closure.

The rule reads the resolved import graph from the project index, so
relative imports and aliases are handled.  Two escape hatches exist:

* ``if TYPE_CHECKING:`` imports are always allowed (they vanish at
  runtime);
* the explicit lazy-import allowlist below — currently only
  ``repro.core.engine`` → ``repro.perf``, the profiler hook that is
  imported inside a function and only when profiling is requested.

SL016 extends the same purity line to *output*: the hot core must not
log or print.  Structured logging lives in ``repro.obs.logging`` and is
attached by the orchestration layers; a ``logging`` import or a
``print()`` inside ``repro.core``/``repro.disk`` would run once per
simulated event in the worst case, and — because logging reads the wall
clock for every record — would also hand the core a covert host-clock
dependency that SL002 exists to forbid.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import register

if TYPE_CHECKING:
    from repro.lint.project import ProjectIndex

#: Layers the core must never depend on at runtime.
_FORBIDDEN = (
    "repro.obs",
    "repro.runner",
    "repro.svc",
    "repro.perf",
    "repro.analysis",
    "repro.lint",
    "repro.cli",
)

#: (importing module, forbidden layer) pairs allowed as *function-local*
#: lazy imports.  Keep this list painfully short and document every entry
#: in docs/LINTING.md.
_LAZY_ALLOWLIST: Set[Tuple[str, str]] = {
    # The engine's opt-in profiling wrapper: imported inside
    # Simulator.run() only when profile=True, so unprofiled simulations
    # never touch repro.perf.
    ("repro.core.engine", "repro.perf"),
}

_CORE_LAYERS = ("repro.core", "repro.disk")


@register
class ImportLayeringRule(Rule):
    """core/disk must stay importable without any orchestration layer."""

    id = "SL015"
    severity = "error"
    summary = "core/disk imports an orchestration layer (obs/runner/svc/perf)"

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        by_name = {module.module: module for module in modules}
        for module_name, records in sorted(project.imports.items()):
            if not module_name.startswith(_CORE_LAYERS):
                continue
            module = by_name.get(module_name)
            if module is None:
                continue
            for record in records:
                layer = self._forbidden_layer(record.target)
                if layer is None:
                    continue
                if record.scope == "type_checking":
                    continue  # erased at runtime — the sanctioned idiom
                if (
                    record.scope == "function"
                    and (module_name, layer) in _LAZY_ALLOWLIST
                ):
                    continue
                how = (
                    "at module scope"
                    if record.scope == "module"
                    else "inside a function (not on the lazy-import allowlist)"
                )
                yield self.finding(
                    module,
                    record.node,
                    f"`{module_name}` is core-layer code but imports "
                    f"`{record.target}` ({layer}) {how}; the hot core must "
                    "stay importable without orchestration layers — use "
                    "`if TYPE_CHECKING:` for annotations or invert the "
                    "dependency (see docs/LINTING.md for the allowlist)",
                )

    def _forbidden_layer(self, target: str) -> Optional[str]:
        for layer in _FORBIDDEN:
            if target == layer or target.startswith(layer + "."):
                return layer
        return None


@register
class CoreOutputRule(Rule):
    """The hot core neither logs nor prints — observability is attached
    from the outside (``repro.obs``), never baked into simulation code."""

    id = "SL016"
    severity = "error"
    summary = "logging or print() in core/disk simulation code"

    def applies_to(self, module: LintModule) -> bool:
        name = module.module
        # Package-boundary match, like SL002: "repro.core.engine" is
        # covered, "repro.corelib" is not.
        return any(
            name == layer or name.startswith(layer + ".")
            for layer in _CORE_LAYERS
        )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith(
                        "logging."
                    ):
                        yield self.finding(
                            module,
                            node,
                            "`import logging` in core-layer code: the hot "
                            "core must not log (every record reads the wall "
                            "clock and formats strings on the simulation "
                            "path); attach a repro.obs Observer from the "
                            "orchestration layer instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "logging" or (
                    node.module or ""
                ).startswith("logging."):
                    yield self.finding(
                        module,
                        node,
                        "`from logging import ...` in core-layer code: the "
                        "hot core must not log; attach a repro.obs Observer "
                        "from the orchestration layer instead",
                    )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    yield self.finding(
                        module,
                        node,
                        "`print()` in core-layer code: stdout writes on the "
                        "simulation path are both slow and invisible to the "
                        "service's structured logs; return data and let the "
                        "caller report it",
                    )

"""The import-layering rule (SL015).

ROADMAP item 1 keeps the hot core compilable and benchmarkable on its
own: ``repro.core`` and ``repro.disk`` must import *nothing* from the
orchestration layers (``obs``, ``runner``, ``svc``, ``perf``,
``analysis``, ``lint``, ``cli``).  A single stray module-level import
drags the whole service stack — and its transitive stdlib surface —
into every simulation process and into the mypy-strict core closure.

The rule reads the resolved import graph from the project index, so
relative imports and aliases are handled.  Two escape hatches exist:

* ``if TYPE_CHECKING:`` imports are always allowed (they vanish at
  runtime);
* the explicit lazy-import allowlist below — currently only
  ``repro.core.engine`` → ``repro.perf``, the profiler hook that is
  imported inside a function and only when profiling is requested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, LintModule, Rule
from repro.lint.rules import register

if TYPE_CHECKING:
    from repro.lint.project import ProjectIndex

#: Layers the core must never depend on at runtime.
_FORBIDDEN = (
    "repro.obs",
    "repro.runner",
    "repro.svc",
    "repro.perf",
    "repro.analysis",
    "repro.lint",
    "repro.cli",
)

#: (importing module, forbidden layer) pairs allowed as *function-local*
#: lazy imports.  Keep this list painfully short and document every entry
#: in docs/LINTING.md.
_LAZY_ALLOWLIST: Set[Tuple[str, str]] = {
    # The engine's opt-in profiling wrapper: imported inside
    # Simulator.run() only when profile=True, so unprofiled simulations
    # never touch repro.perf.
    ("repro.core.engine", "repro.perf"),
}

_CORE_LAYERS = ("repro.core", "repro.disk")


@register
class ImportLayeringRule(Rule):
    """core/disk must stay importable without any orchestration layer."""

    id = "SL015"
    severity = "error"
    summary = "core/disk imports an orchestration layer (obs/runner/svc/perf)"

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        by_name = {module.module: module for module in modules}
        for module_name, records in sorted(project.imports.items()):
            if not module_name.startswith(_CORE_LAYERS):
                continue
            module = by_name.get(module_name)
            if module is None:
                continue
            for record in records:
                layer = self._forbidden_layer(record.target)
                if layer is None:
                    continue
                if record.scope == "type_checking":
                    continue  # erased at runtime — the sanctioned idiom
                if (
                    record.scope == "function"
                    and (module_name, layer) in _LAZY_ALLOWLIST
                ):
                    continue
                how = (
                    "at module scope"
                    if record.scope == "module"
                    else "inside a function (not on the lazy-import allowlist)"
                )
                yield self.finding(
                    module,
                    record.node,
                    f"`{module_name}` is core-layer code but imports "
                    f"`{record.target}` ({layer}) {how}; the hot core must "
                    "stay importable without orchestration layers — use "
                    "`if TYPE_CHECKING:` for annotations or invert the "
                    "dependency (see docs/LINTING.md for the allowlist)",
                )

    def _forbidden_layer(self, target: str) -> Optional[str]:
        for layer in _FORBIDDEN:
            if target == layer or target.startswith(layer + "."):
                return layer
        return None

"""Command-line front end for simlint.

Used both by ``python -m repro.lint`` and by the ``repro-sim lint``
subcommand (``repro.cli`` reuses :func:`add_lint_arguments` and
:func:`run_lint` so the two entry points cannot drift apart).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (
    Baseline,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.rules import all_rules

#: The committed baseline file, looked up relative to the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


def _default_paths() -> List[Path]:
    """With no explicit paths, lint the installed ``repro`` package tree."""
    import repro

    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - namespace-package edge
        return [Path(".")]
    return [Path(package_file).parent]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  [{rule.severity:7s}]  {rule.summary}")
        return 0
    paths = list(args.paths) or _default_paths()
    baseline_path: Optional[Path] = args.baseline
    if baseline_path is None:
        candidate = Path(DEFAULT_BASELINE)
        baseline_path = candidate if candidate.exists() else None
    select = None
    if args.select:
        select = {rule_id.strip().upper() for rule_id in args.select.split(",")}
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    if args.update_baseline:
        report = lint_paths(paths, rules, baseline=None, select=select)
        target = args.baseline or Path(DEFAULT_BASELINE)
        Baseline.save(target, report.findings)
        print(f"simlint: wrote {len(report.findings)} findings to {target}")
        return 0
    report = lint_paths(paths, rules, baseline=baseline, select=select)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint",
        description="simlint: determinism & policy-contract static analysis",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

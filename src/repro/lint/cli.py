"""Command-line front end for simlint.

Used both by ``python -m repro.lint`` and by the ``repro-sim lint``
subcommand (``repro.cli`` reuses :func:`add_lint_arguments` and
:func:`run_lint` so the two entry points cannot drift apart).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (
    Baseline,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.rules import all_rules
from repro.lint.sarif import render_sarif

#: The committed baseline file, looked up relative to the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


def _default_paths() -> List[Path]:
    """With no explicit paths, lint the installed ``repro`` package tree."""
    import repro

    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - namespace-package edge
        return [Path(".")]
    return [Path(package_file).parent]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif renders as GitHub "
        "code-scanning annotations)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout (CI uploads "
        "the SARIF artifact from here)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the whole analysis takes longer than this "
        "budget — keeps the multi-pass engine fast enough for pre-commit",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  [{rule.severity:7s}]  {rule.summary}")
        return 0
    paths = list(args.paths) or _default_paths()
    baseline_path: Optional[Path] = args.baseline
    if baseline_path is None:
        candidate = Path(DEFAULT_BASELINE)
        baseline_path = candidate if candidate.exists() else None
    select = None
    if args.select:
        select = {rule_id.strip().upper() for rule_id in args.select.split(",")}
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    if args.update_baseline:
        report = lint_paths(paths, rules, baseline=None, select=select)
        target = args.baseline or Path(DEFAULT_BASELINE)
        Baseline.save(target, report.findings)
        print(f"simlint: wrote {len(report.findings)} findings to {target}")
        return 0
    report = lint_paths(paths, rules, baseline=baseline, select=select)
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report, rules)
    else:
        rendered = render_text(report)
    output: Optional[Path] = getattr(args, "output", None)
    if output is not None:
        output.write_text(rendered + "\n")
    else:
        print(rendered)
    exit_code = report.exit_code
    max_seconds: Optional[float] = getattr(args, "max_seconds", None)
    if max_seconds is not None and report.elapsed_s > max_seconds:
        print(
            f"simlint: analysis took {report.elapsed_s:.2f}s, over the "
            f"{max_seconds:.2f}s budget — the engine must stay fast enough "
            "for pre-commit",
            file=sys.stderr,
        )
        exit_code = 1
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint",
        description="simlint: determinism & policy-contract static analysis",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The simlint rule engine.

A :class:`Rule` inspects one parsed module at a time (or, optionally, the
whole set of modules at once for cross-module contracts) and yields
:class:`Finding` objects.  The engine handles everything around the rules:
file discovery, module naming, inline suppression comments, the committed
baseline of grandfathered findings, and text/JSON reporting.

Suppressions
    A finding is suppressed by a comment on its reported line::

        values = {d: 1 for d in free}  # simlint: disable=SL003

    ``# simlint: disable`` with no rule list suppresses every rule on that
    line.  Multiple rules are comma-separated.

Baseline
    ``lint-baseline.json`` (committed at the repo root) lists grandfathered
    findings by fingerprint — ``(rule, path, message)``, deliberately
    ignoring line numbers so unrelated edits do not invalidate entries.
    New findings (not in the baseline) fail the run; the project policy is
    to *fix* findings rather than baseline them, and the committed baseline
    is empty.
"""

from __future__ import annotations

import ast
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.lint.project import ProjectIndex

#: Severity levels, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Baseline identity: rule + path + message, line-number free."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


class LintModule:
    """A parsed source file plus the lookups rules need."""

    def __init__(self, path: str, module: str, source: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.suppressions: Dict[int, Set[str]] = _parse_suppressions(self.lines)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressions[number] = {"*"}
        else:
            suppressions[number] = {
                rule.strip().upper() for rule in listed.split(",") if rule.strip()
            }
    return suppressions


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`id`, :attr:`severity` and :attr:`summary`, and
    override :meth:`check` (per module) and/or :meth:`check_project`
    (once, with every module — for cross-module contracts).
    """

    id: str = "SL000"
    severity: str = "error"
    summary: str = ""

    def applies_to(self, module: LintModule) -> bool:
        """Whether :meth:`check` should run on ``module`` at all."""
        return True

    def check(self, module: LintModule) -> Iterator[Finding]:
        """Yield findings for one module."""
        return iter(())

    def check_project(
        self, modules: Sequence[LintModule], project: "ProjectIndex"
    ) -> Iterator[Finding]:
        """Yield findings that need visibility across every module.

        ``project`` is the shared :class:`~repro.lint.project.ProjectIndex`
        (import graph, call summaries, reachability), built once per run.
        """
        return iter(())

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=line,
            col=col,
            message=message,
        )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    baselined: List[Finding]
    suppressed: int
    stale_baseline: List[str]
    files: int
    parse_errors: List[Finding]
    #: Wall-clock cost of the whole run (parse + every pass), so CI can
    #: gate on the analyzer staying fast enough for pre-commit use.
    elapsed_s: float = 0.0

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_errors) else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files": self.files,
            "findings": [f.to_dict() for f in self.all_new()],
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "stale_baseline": list(self.stale_baseline),
            "elapsed_s": round(self.elapsed_s, 3),
            "exit_code": self.exit_code,
        }

    def all_new(self) -> List[Finding]:
        """Parse errors and rule findings, sorted for stable output."""
        combined = self.parse_errors + self.findings
        return sorted(combined, key=lambda f: (f.path, f.line, f.col, f.rule))


class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.counts: Dict[str, int] = {}
        for fingerprint in fingerprints:
            self.counts[fingerprint] = self.counts.get(fingerprint, 0) + 1

    def __len__(self) -> int:
        return sum(self.counts.values())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        entries = data.get("findings", [])
        return cls(
            f"{e['rule']}::{e['path']}::{e['message']}" for e in entries
        )

    @staticmethod
    def save(path: Path, findings: Sequence[Finding]) -> None:
        entries = [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ]
        payload = {"version": 1, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into (new, grandfathered); also return stale
        baseline fingerprints that matched nothing this run."""
        remaining = dict(self.counts)
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint
            if remaining.get(fingerprint, 0) > 0:
                remaining[fingerprint] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = sorted(
            fingerprint
            for fingerprint, count in remaining.items()
            for _ in range(count)
        )
        return new, grandfathered, stale


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at the ``repro`` package.

    Files outside a ``repro`` package tree fall back to their stem, which
    keeps fixture files usable in tests.
    """
    parts = list(path.parts)
    name = path.stem
    if name == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [name]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return name


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand directories into sorted ``.py`` file lists."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    unique: List[Path] = []
    seen: Set[Path] = set()
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
    select: Optional[Set[str]] = None,
) -> LintReport:
    """Lint files/directories and apply the baseline. The main entry point."""
    # Host-clock timing of the analyzer itself (never of simulations):
    # the CI/pre-commit budget gate reads LintReport.elapsed_s.
    started = time.perf_counter()
    if select:
        rules = [rule for rule in rules if rule.id in select]
    modules: List[LintModule] = []
    parse_errors: List[Finding] = []
    files = collect_files(paths)
    for path in files:
        display = _display_path(path)
        try:
            source = path.read_text()
            modules.append(LintModule(display, module_name_for(path), source))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", 1) or 1
            parse_errors.append(
                Finding(
                    rule="SL000",
                    severity="error",
                    path=display,
                    line=line,
                    col=1,
                    message=f"could not parse file: {error.__class__.__name__}",
                )
            )
    raw, suppressed = _run_rules(modules, rules)
    baseline = baseline or Baseline()
    new, grandfathered, stale = baseline.partition(raw)
    return LintReport(
        findings=new,
        baselined=grandfathered,
        suppressed=suppressed,
        stale_baseline=stale,
        files=len(files),
        parse_errors=parse_errors,
        elapsed_s=time.perf_counter() - started,
    )


def lint_source(
    source: str,
    module: str = "repro.core.snippet",
    path: str = "snippet.py",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string — the test-suite entry point."""
    if rules is None:
        from repro.lint.rules import all_rules

        rules = all_rules()
    lint_module = LintModule(path, module, source)
    findings, _ = _run_rules([lint_module], rules)
    return findings


def _run_rules(
    modules: Sequence[LintModule], rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    from repro.lint.project import ProjectIndex  # deferred: avoids import cycle

    project = ProjectIndex(modules)
    findings: List[Finding] = []
    suppressed = 0
    by_path: Dict[str, LintModule] = {m.path: m for m in modules}
    for rule in rules:
        produced: List[Finding] = []
        for module in modules:
            if rule.applies_to(module):
                produced.extend(rule.check(module))
        produced.extend(rule.check_project(modules, project))
        for finding in produced:
            owner = by_path.get(finding.path)
            if owner is not None and owner.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def render_text(report: LintReport) -> str:
    """Human-readable report."""
    lines = [finding.render() for finding in report.all_new()]
    for fingerprint in report.stale_baseline:
        lines.append(f"stale baseline entry (fix no longer needed?): {fingerprint}")
    total = len(report.all_new())
    noun = "finding" if total == 1 else "findings"
    summary = (
        f"simlint: {total} {noun} in {report.files} files"
        f" ({len(report.baselined)} baselined, {report.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)

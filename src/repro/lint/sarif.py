"""SARIF 2.1.0 output for simlint.

SARIF (Static Analysis Results Interchange Format) is the industry
exchange format GitHub code scanning ingests: uploading a SARIF file
from CI renders findings as inline pull-request annotations with the
rule's help text, instead of a wall of job-log text nobody reads.

The renderer emits one ``run`` with the full rule catalogue (so the
annotation UI can show each rule's summary even for rules with no
findings this run) and one ``result`` per new finding, including parse
errors.  The structural fingerprint simlint already uses for baselines
is exported as a ``partialFingerprint`` so code-scanning alert identity
survives unrelated edits, matching the baseline's line-number-free
semantics.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, LintReport, Rule

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: simlint severity -> SARIF reportingConfiguration level.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary or rule.id},
        "help": {"text": f"See docs/LINTING.md, rule {rule.id}."},
        "defaultConfiguration": {"level": _LEVELS.get(rule.severity, "warning")},
    }


def _result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            # The baseline's structural identity: stable across
            # line-number churn, so alerts don't flap on unrelated edits.
            "simlintFingerprint/v1": finding.fingerprint,
        },
    }


def sarif_dict(report: LintReport, rules: Sequence[Rule]) -> Dict[str, object]:
    """The SARIF log as a plain dict (tests assert on this)."""
    descriptors: List[Dict[str, object]] = [
        _rule_descriptor(rule) for rule in rules
    ]
    results = [_result(finding) for finding in report.all_new()]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": descriptors,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": report.exit_code == 0,
                        "properties": {
                            "files": report.files,
                            "elapsed_s": round(report.elapsed_s, 3),
                            "suppressed": report.suppressed,
                            "baselined": len(report.baselined),
                        },
                    }
                ],
            }
        ],
    }


def render_sarif(report: LintReport, rules: Sequence[Rule]) -> str:
    return json.dumps(sarif_dict(report, rules), indent=2)

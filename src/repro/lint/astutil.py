"""Small AST helpers shared by the simlint engine layers and rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    return dotted(node.func)


def unparse(node: ast.AST, limit: int = 60) -> str:
    text = ast.unparse(node)
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def scoped_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class scopes.

    The root itself is yielded; nested ``def`` / ``async def`` / ``class``
    statements are yielded (so callers can see the binding) but their
    bodies are not — code inside them runs in a different scope and, for
    call-graph purposes, only when something actually calls them.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def receiver_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a method call's receiver (``self._q`` -> ``_q``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None

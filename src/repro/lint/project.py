"""Whole-project index for simlint's cross-module passes.

A :class:`ProjectIndex` is built once per lint run from every parsed
module and gives rules three things single-file AST walks cannot see:

Import graph
    Every ``import``/``from … import`` in every module, resolved to a
    dotted module name and classified by scope — module level, inside a
    function (lazy import), or under ``if TYPE_CHECKING:``.  SL015 reads
    this directly.

Call summaries
    A table of every function and method in the project
    (``module:Class.method`` qualnames) with its resolved call sites and
    the blocking primitives it touches, plus a transitive *blocks*
    fixpoint with witness chains ("``ResultStore.get`` → ``open()``").
    Resolution is intentionally lightweight but covers the idioms this
    codebase actually uses: module functions, ``self.method``, attributes
    typed by ``self.attr = ClassName(...)`` or annotations, locals typed
    by construction or annotation, ``from``-imports, module aliases, and
    module-level dict registries (``CELL_KINDS[kind](...)`` resolves to
    every function in the dict).  SL010/SL012/SL014 consume this.

Reachability
    ``reachable_from(roots)`` computes the call-graph closure — used to
    answer "which code runs inside a forked ``SupervisedPool`` worker"
    for SL014, starting from every ``target=`` handed to a
    ``*.Process(...)`` constructor.

The index never imports or executes project code; everything is derived
from the ASTs the engine already parsed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.astutil import dotted, receiver_name, scoped_walk
from repro.lint.engine import LintModule

#: Fully-qualified calls that block the calling thread.  Values are the
#: human-readable witness used in finding messages.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep()",
    "open": "open()",
    "io.open": "io.open()",
    "os.fsync": "os.fsync()",
    "os.fdatasync": "os.fdatasync()",
    "os.replace": "os.replace()",
    "os.rename": "os.rename()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "subprocess.Popen": "subprocess.Popen()",
    "socket.create_connection": "socket.create_connection()",
}

#: Method names that block when the receiver looks like a queue / pool /
#: thread / pipe object.  Matched against the receiver's last identifier;
#: ``await``-ed calls (and calls fed straight into asyncio wrappers) are
#: exempt before this table is consulted.
BLOCKING_METHODS: Dict[str, "re.Pattern[str]"] = {
    "get": re.compile(r"queue|pool|result", re.IGNORECASE),
    "join": re.compile(r"thread|proc|process|pool|worker|queue", re.IGNORECASE),
    "acquire": re.compile(r"lock|sem", re.IGNORECASE),
    "recv": re.compile(r"conn|sock|pipe", re.IGNORECASE),
    "recv_bytes": re.compile(r"conn|sock|pipe", re.IGNORECASE),
    "accept": re.compile(r"sock|server|listener", re.IGNORECASE),
    "wait": re.compile(r"event|cond|barrier|proc|process", re.IGNORECASE),
}

#: asyncio helpers that consume a coroutine/future argument — a call fed
#: directly into one of these is scheduled on the loop, not executed
#: synchronously, so it is never a blocking call site.
_ASYNC_WRAPPERS = frozenset(
    {
        "wait_for", "shield", "gather", "wait", "ensure_future",
        "create_task", "as_completed", "run_coroutine_threadsafe",
        "to_thread", "run_in_executor",
    }
)

#: Constructors whose result is mutable shared state when bound at module
#: level (the objects SL014 watches for cross-fork mutation).
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}
)

#: Calls that produce an OS-level handle (fd / socket) — capturing one of
#: these across ``fork`` shares the handle with the child.
_HANDLE_CTORS = frozenset({"open", "io.open", "socket.socket"})
_HANDLE_METHODS = frozenset({"accept", "makefile"})


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, resolved and classified."""

    module: str          #: importing module's dotted name
    target: str          #: imported module's dotted name
    names: Tuple[str, ...]  #: names pulled from ``target`` ("" for plain import)
    scope: str           #: "module" | "function" | "type_checking"
    node: ast.stmt


@dataclass
class CallSite:
    """One call expression with its resolved candidate targets."""

    node: ast.Call
    display: str                 #: source-ish text for messages
    targets: Tuple[str, ...]     #: candidate qualnames in the project
    awaited: bool                #: under ``await`` or fed to an asyncio wrapper
    blocking: Optional[str] = None  #: witness if this is a blocking primitive


@dataclass
class FunctionInfo:
    """Call summary for one function or method."""

    qualname: str
    module: LintModule
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str]
    is_async: bool
    calls: List[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.split(":", 1)[1]

    @property
    def display(self) -> str:
        return self.name.replace(".<locals>", "")


class _ClassInfo:
    def __init__(self, key: str) -> None:
        self.key = key  # "module:Class"
        self.methods: Dict[str, str] = {}     # method name -> qualname
        self.attr_types: Dict[str, str] = {}  # self.attr -> class key
        self.handle_attrs: Set[str] = set()   # self.attr bound to an fd/socket


class _ModuleEnv:
    """Name-resolution environment for one module."""

    def __init__(self, module: LintModule) -> None:
        self.module = module
        self.functions: Dict[str, str] = {}      # top-level name -> qualname
        self.classes: Dict[str, str] = {}        # local class name -> class key
        self.module_aliases: Dict[str, str] = {} # alias -> dotted module
        self.from_imports: Dict[str, Tuple[str, str]] = {}  # name -> (module, orig)
        self.registries: Dict[str, Tuple[str, ...]] = {}    # dict-of-functions
        self.mutable_globals: Set[str] = set()
        self.handle_globals: Set[str] = set()


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # A non-package module's first dot is its containing package.
    drop = node.level
    if len(parts) < drop:
        return node.module
    base = parts[: len(parts) - drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _is_awaitedish(module: LintModule, call: ast.Call) -> bool:
    """True when the call's result is awaited or fed into asyncio machinery."""
    node: ast.AST = call
    parent = module.parent(node)
    while parent is not None:
        if isinstance(parent, ast.Await):
            return True
        if isinstance(parent, ast.Call) and parent.func is not node:
            name = dotted(parent.func)
            if name is not None and name.rsplit(".", 1)[-1] in _ASYNC_WRAPPERS:
                return True
        if isinstance(parent, ast.stmt):
            return False
        node, parent = parent, module.parent(parent)
    return False


class ProjectIndex:
    """Cross-module facts derived once per lint run."""

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules: Dict[str, LintModule] = {m.module: m for m in modules}
        self.imports: Dict[str, List[ImportRecord]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._classes: Dict[str, _ClassInfo] = {}
        self._envs: Dict[str, _ModuleEnv] = {}
        #: qualname -> witness chain ending in a blocking primitive
        self.blocks: Dict[str, Tuple[str, ...]] = {}
        #: (qualname of Process target, Call node, module) for every
        #: ``*.Process(target=...)`` constructor in the project.
        self.process_targets: List[Tuple[str, ast.Call, LintModule]] = []

        for module in modules:
            self._collect_definitions(module)
        for module in modules:
            self._collect_imports(module)
            self._collect_env_details(module)
        for module in modules:
            self._collect_calls(module)
        self._propagate_blocking()
        self._collect_process_targets()

    # -- construction ------------------------------------------------------

    def _collect_definitions(self, module: LintModule) -> None:
        env = _ModuleEnv(module)
        self._envs[module.module] = env
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.module}:{node.name}"
                env.functions[node.name] = qualname
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=module,
                    node=node,
                    cls=None,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
            elif isinstance(node, ast.ClassDef):
                key = f"{module.module}:{node.name}"
                info = _ClassInfo(key)
                env.classes[node.name] = key
                self._classes[key] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{module.module}:{node.name}.{item.name}"
                        info.methods[item.name] = qualname
                        self.functions[qualname] = FunctionInfo(
                            qualname=qualname,
                            module=module,
                            node=item,
                            cls=node.name,
                            is_async=isinstance(item, ast.AsyncFunctionDef),
                        )

    def _collect_imports(self, module: LintModule) -> None:
        env = self._envs[module.module]
        records: List[ImportRecord] = []
        type_checking: Set[ast.AST] = set()
        in_function: Set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.If) and self._is_type_checking(node.test):
                for child in node.body:
                    type_checking.update(ast.walk(child))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in node.body:
                    in_function.update(ast.walk(child))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    scope = self._scope_of(node, type_checking, in_function)
                    records.append(
                        ImportRecord(module.module, alias.name, ("",), scope, node)
                    )
                    if scope != "type_checking":
                        bound = alias.asname or alias.name.split(".", 1)[0]
                        target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                        env.module_aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(module.module, node)
                if target is None:
                    continue
                scope = self._scope_of(node, type_checking, in_function)
                names = tuple(alias.name for alias in node.names)
                records.append(ImportRecord(module.module, target, names, scope, node))
                if scope != "type_checking":
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if f"{target}.{alias.name}" in self.modules:
                            env.module_aliases[bound] = f"{target}.{alias.name}"
                        else:
                            env.from_imports[bound] = (target, alias.name)
        self.imports[module.module] = records

    @staticmethod
    def _is_type_checking(test: ast.AST) -> bool:
        name = dotted(test)
        return name is not None and name.rsplit(".", 1)[-1] == "TYPE_CHECKING"

    @staticmethod
    def _scope_of(
        node: ast.AST, type_checking: Set[ast.AST], in_function: Set[ast.AST]
    ) -> str:
        if node in type_checking:
            return "type_checking"
        if node in in_function:
            return "function"
        return "module"

    def _collect_env_details(self, module: LintModule) -> None:
        """Registries, mutable globals, handle globals, and attribute types."""
        env = self._envs[module.module]
        for node in module.tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if value is None or not names:
                continue
            if isinstance(value, ast.Dict):
                resolved: List[str] = []
                for entry in value.values:
                    target = self._value_target(env, entry)
                    if target is not None:
                        resolved.append(target)
                if resolved and len(resolved) == len(value.values):
                    for name in names:
                        env.registries[name] = tuple(resolved)
            if self._is_mutable_ctor(value):
                env.mutable_globals.update(names)
            if self._is_handle_expr(value):
                env.handle_globals.update(names)
        # self.attr types / handle attributes, from every method body.
        for class_name, key in env.classes.items():
            info = self._classes[key]
            class_node = next(
                (
                    n
                    for n in module.tree.body
                    if isinstance(n, ast.ClassDef) and n.name == class_name
                ),
                None,
            )
            if class_node is None:
                continue
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                param_types = self._param_types(env, method)
                for stmt in ast.walk(method):
                    target: Optional[ast.AST] = None
                    value = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target, value = stmt.target, stmt.value
                        annotated = self._class_key_for_annotation(env, stmt.annotation)
                        if (
                            annotated is not None
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attr_types[target.attr] = annotated
                    if (
                        not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                        or value is None
                    ):
                        continue
                    constructed = self._constructed_class(env, value)
                    if constructed is not None:
                        info.attr_types[target.attr] = constructed
                    elif isinstance(value, ast.Name) and value.id in param_types:
                        info.attr_types[target.attr] = param_types[value.id]
                    if self._is_handle_expr(value):
                        info.handle_attrs.add(target.attr)

    def _param_types(self, env: _ModuleEnv, func: ast.AST) -> Dict[str, str]:
        """Parameter name -> class key, from annotations resolvable in-project."""
        types: Dict[str, str] = {}
        arguments = getattr(func, "args", None)
        if arguments is None:
            return types
        for arg in list(arguments.posonlyargs) + list(arguments.args) + list(
            arguments.kwonlyargs
        ):
            if arg.annotation is None:
                continue
            key = self._class_key_for_annotation(env, arg.annotation)
            if key is not None:
                types[arg.arg] = key
        return types

    def _class_key_for_annotation(
        self, env: _ModuleEnv, annotation: ast.AST
    ) -> Optional[str]:
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            name = annotation.value.strip()
            if name in env.classes:
                return env.classes[name]
            return self._imported_class(env, name)
        name = dotted(annotation)
        if name is None:
            return None
        if name in env.classes:
            return env.classes[name]
        return self._imported_class(env, name)

    def _imported_class(self, env: _ModuleEnv, name: str) -> Optional[str]:
        head = name.split(".", 1)[0]
        if head in env.from_imports:
            target, orig = env.from_imports[head]
            key = f"{target}:{orig}"
            if key in self._classes:
                return key
        if "." in name:
            prefix, last = name.rsplit(".", 1)
            target_module = env.module_aliases.get(prefix.split(".", 1)[0])
            if target_module is not None:
                rest = prefix.split(".", 1)[1:]
                full = ".".join([target_module] + rest)
                key = f"{full}:{last}"
                if key in self._classes:
                    return key
        return None

    def _constructed_class(self, env: _ModuleEnv, value: ast.AST) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted(value.func)
        if name is None:
            return None
        if name in env.classes:
            return env.classes[name]
        return self._imported_class(env, name)

    def _is_mutable_ctor(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, ast.Call):
            name = dotted(value.func)
            return name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CTORS
        return False

    def _is_handle_expr(self, value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = dotted(value.func)
        if name in _HANDLE_CTORS:
            return True
        if isinstance(value.func, ast.Attribute):
            return value.func.attr in _HANDLE_METHODS
        return False

    def _value_target(self, env: _ModuleEnv, value: ast.AST) -> Optional[str]:
        """Qualname when a dict-registry value is a project function."""
        if isinstance(value, ast.Name) and value.id in env.functions:
            return env.functions[value.id]
        return None

    # -- call collection ---------------------------------------------------

    def _collect_calls(self, module: LintModule) -> None:
        env = self._envs[module.module]
        for info in list(self.functions.values()):
            if info.module is not module:
                continue
            self._summarize_function(env, info)

    def _summarize_function(self, env: _ModuleEnv, info: FunctionInfo) -> None:
        assert isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        local_types = dict(self._param_types(env, info.node))
        local_funcs: Dict[str, Tuple[str, ...]] = {}
        nested: Dict[str, str] = {}
        for node in scoped_walk(info.node):
            if node is info.node:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{info.qualname}.<locals>.{node.name}"
                nested[node.name] = qualname
                if qualname not in self.functions:
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=info.module,
                        node=node,
                        cls=info.cls,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                    )
                    self._summarize_function(env, self.functions[qualname])
        # Local variable typing: construction, annotation, registry lookup.
        for node in scoped_walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            constructed = self._constructed_class(env, value)
            if constructed is not None:
                local_types[target.id] = constructed
                continue
            targets = self._registry_lookup(env, info, value)
            if targets is not None:
                local_funcs[target.id] = targets
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and info.cls is not None
            ):
                cls = self._classes.get(f"{info.module.module}:{info.cls}")
                if cls is not None and value.attr in cls.attr_types:
                    local_types[target.id] = cls.attr_types[value.attr]
        for node in scoped_walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            awaited = _is_awaitedish(info.module, node)
            display = ast.unparse(node.func)
            targets = self._resolve_call(env, info, node, local_types, local_funcs, nested)
            blocking = None if awaited else self._blocking_reason(env, node)
            if targets or blocking is not None:
                info.calls.append(
                    CallSite(
                        node=node,
                        display=display,
                        targets=targets,
                        awaited=awaited,
                        blocking=blocking,
                    )
                )

    def _registry_lookup(
        self, env: _ModuleEnv, info: FunctionInfo, value: ast.AST
    ) -> Optional[Tuple[str, ...]]:
        if (
            isinstance(value, ast.Subscript)
            and isinstance(value.value, ast.Name)
            and value.value.id in env.registries
        ):
            return env.registries[value.value.id]
        return None

    def _resolve_call(
        self,
        env: _ModuleEnv,
        info: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, str],
        local_funcs: Dict[str, Tuple[str, ...]],
        nested: Dict[str, str],
    ) -> Tuple[str, ...]:
        func = call.func
        # Registry dispatch: CELL_KINDS[kind](...) or a local bound from it.
        if isinstance(func, ast.Subscript):
            targets = self._registry_lookup(env, info, func)
            if targets is not None:
                return targets
            return ()
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_funcs:
                return local_funcs[name]
            if name in nested:
                return (nested[name],)
            if name in env.functions:
                return (env.functions[name],)
            if name in env.classes:
                return self._constructor_targets(env.classes[name])
            if name in env.from_imports:
                target, orig = env.from_imports[name]
                qualname = f"{target}:{orig}"
                if qualname in self.functions:
                    return (qualname,)
                if qualname in self._classes:
                    return self._constructor_targets(qualname)
            return ()
        if not isinstance(func, ast.Attribute):
            return ()
        # Walk the attribute chain, folding types as we go.
        chain: List[str] = []
        base: ast.AST = func
        while isinstance(base, ast.Attribute):
            chain.append(base.attr)
            base = base.value
        chain.reverse()  # attrs from receiver outward; last item is the method
        if isinstance(base, ast.Name):
            root = base.id
            method = chain[-1]
            mids = chain[:-1]
            current: Optional[str] = None  # class key of the receiver
            if root == "self" and info.cls is not None:
                current = f"{info.module.module}:{info.cls}"
            elif root in local_types:
                current = local_types[root]
            elif root in env.module_aliases and not mids:
                # mod.func(...) / mod.Class(...)
                target_module = env.module_aliases[root]
                qualname = f"{target_module}:{method}"
                if qualname in self.functions:
                    return (qualname,)
                if qualname in self._classes:
                    return self._constructor_targets(qualname)
                return ()
            elif root in env.module_aliases and mids:
                # pkg.sub.func(...): extend the module path through mids.
                target_module = env.module_aliases[root]
                full = ".".join([target_module] + mids)
                qualname = f"{full}:{method}"
                if qualname in self.functions:
                    return (qualname,)
                if qualname in self._classes:
                    return self._constructor_targets(qualname)
                return ()
            if current is None:
                return ()
            for attr in mids:
                cls = self._classes.get(current)
                if cls is None or attr not in cls.attr_types:
                    return ()
                current = cls.attr_types[attr]
            cls = self._classes.get(current)
            if cls is not None and method in cls.methods:
                return (cls.methods[method],)
        return ()

    def _constructor_targets(self, class_key: str) -> Tuple[str, ...]:
        cls = self._classes.get(class_key)
        if cls is not None and "__init__" in cls.methods:
            return (cls.methods["__init__"],)
        return ()

    # -- blocking analysis -------------------------------------------------

    def _blocking_reason(self, env: _ModuleEnv, call: ast.Call) -> Optional[str]:
        """Witness text when ``call`` is a blocking primitive, else None."""
        func = call.func
        name = dotted(func)
        if name is not None:
            canonical = self._canonical_external(env, name)
            if canonical in BLOCKING_CALLS:
                return BLOCKING_CALLS[canonical]
        if isinstance(func, ast.Attribute):
            method = func.attr
            pattern = BLOCKING_METHODS.get(method)
            if pattern is not None:
                receiver = receiver_name(func.value)
                if receiver is not None and pattern.search(receiver):
                    if method == "get" and call.args:
                        return None  # dict.get(key) style, not queue.get()
                    return f".{method}() on `{receiver}`"
        return None

    def _canonical_external(self, env: _ModuleEnv, name: str) -> str:
        """Expand local aliases so `sleep` / `sp.run` match the tables."""
        head, _, rest = name.partition(".")
        if head in env.from_imports:
            target, orig = env.from_imports[head]
            base = f"{target}.{orig}"
            return f"{base}.{rest}" if rest else base
        if head in env.module_aliases:
            target = env.module_aliases[head]
            return f"{target}.{rest}" if rest else target
        return name

    def _propagate_blocking(self) -> None:
        """Fixpoint: sync functions that (transitively) hit a primitive."""
        for info in self.functions.values():
            if info.is_async:
                continue
            for site in info.calls:
                if site.blocking is not None:
                    self.blocks.setdefault(info.qualname, (site.blocking,))
                    break
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if info.is_async or info.qualname in self.blocks:
                    continue
                for site in info.calls:
                    for target in site.targets:
                        chain = self.blocks.get(target)
                        target_info = self.functions.get(target)
                        if chain is None or target_info is None or target_info.is_async:
                            continue
                        self.blocks[info.qualname] = (target_info.display,) + chain
                        changed = True
                        break
                    if info.qualname in self.blocks:
                        break

    def blocking_chain(self, qualname: str) -> Optional[Tuple[str, ...]]:
        """Witness chain for a sync function, e.g. ``("ResultStore.get", "open()")``."""
        return self.blocks.get(qualname)

    # -- fork / reachability ----------------------------------------------

    def _collect_process_targets(self) -> None:
        for info in self.functions.values():
            env = self._envs[info.module.module]
            for node in scoped_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted(node.func)
                if name is None or name.rsplit(".", 1)[-1] != "Process":
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    resolved = self._resolve_target_ref(env, info, keyword.value)
                    if resolved is not None:
                        self.process_targets.append((resolved, node, info.module))

    def _resolve_target_ref(
        self, env: _ModuleEnv, info: FunctionInfo, value: ast.AST
    ) -> Optional[str]:
        if isinstance(value, ast.Name):
            if value.id in env.functions:
                return env.functions[value.id]
            if value.id in env.from_imports:
                target, orig = env.from_imports[value.id]
                qualname = f"{target}:{orig}"
                if qualname in self.functions:
                    return qualname
        elif isinstance(value, ast.Attribute):
            if (
                isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and info.cls is not None
            ):
                cls = self._classes.get(f"{info.module.module}:{info.cls}")
                if cls is not None:
                    return cls.methods.get(value.attr)
        return None

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Call-graph closure of ``roots`` (qualnames)."""
        seen: Set[str] = set()
        frontier: List[str] = [r for r in roots if r in self.functions]
        while frontier:
            qualname = frontier.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            for site in self.functions[qualname].calls:
                for target in site.targets:
                    if target not in seen and target in self.functions:
                        frontier.append(target)
        return seen

    # -- lookups used by rules --------------------------------------------

    def async_functions(self) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.is_async:
                yield info

    def env(self, module_name: str) -> Optional[_ModuleEnv]:
        return self._envs.get(module_name)

    def class_info(self, class_key: str) -> Optional[_ClassInfo]:
        return self._classes.get(class_key)

    def mutable_globals(self, module_name: str) -> Set[str]:
        env = self._envs.get(module_name)
        return env.mutable_globals if env is not None else set()

    def handle_globals(self, module_name: str) -> Set[str]:
        env = self._envs.get(module_name)
        return env.handle_globals if env is not None else set()

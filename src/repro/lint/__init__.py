"""simlint — project-specific static analysis for the simulator.

The paper's results hinge on exact, trace-driven reproducibility: PR 2
pinned the simulator's output with SHA-256 golden digests, and this package
keeps future changes from silently breaking that guarantee.  A small
AST-based rule engine (stdlib :mod:`ast`, no dependencies) enforces the
determinism and policy-contract invariants the golden tests can only catch
after the fact, on the traces they happen to cover.

Entry points:

* ``repro-sim lint`` (the CLI subcommand)
* ``python -m repro.lint``
* :func:`repro.lint.run` for programmatic use

See ``docs/LINTING.md`` for the rule catalogue and rationale.
"""

from repro.lint.engine import (
    Baseline,
    Finding,
    LintModule,
    LintReport,
    Rule,
    lint_paths,
    lint_source,
)
from repro.lint.project import ProjectIndex
from repro.lint.rules import ALL_RULES, all_rules
from repro.lint.sarif import render_sarif
from repro.lint.cli import add_lint_arguments, main, run_lint

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintModule",
    "LintReport",
    "ProjectIndex",
    "Rule",
    "add_lint_arguments",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "render_sarif",
    "run_lint",
]

"""A lightweight intraprocedural forward-dataflow framework.

simlint's crash-consistency pass (SL013) needs more than pattern
matching: "was this handle fsync'd before the rename?" is a question
about *order along every path*, which is a forward dataflow problem.
This module provides the minimal machinery — an abstract state the
analysis defines, a statement walker that handles Python's structured
control flow, and path joins at branch merges.

The framework is deliberately small:

* **Forward only.**  Statements are interpreted in source order.
* **Structured control flow.**  ``if`` runs both arms on copies of the
  state and joins; loops run their body once against a copy and join
  with the pre-state (one unrolling — enough for protocol code, which
  does not fsync in loops); ``try`` bodies, handlers and ``finally``
  run sequentially (an over-approximation that keeps straight-line
  protocol sequences precise); ``with`` gets enter/exit hooks so
  analyses can model context-manager cleanup (``close()`` on block
  exit).
* **Join = analysis-defined.**  The state object implements ``copy()``
  and ``join(other)``; the framework never looks inside it.

Nested function and class definitions are *not* interpreted — they
execute in a different frame, and the call-summary layer
(:mod:`repro.lint.project`) owns cross-function reasoning.
"""

from __future__ import annotations

import ast
from typing import List, Sequence


class AbstractState:
    """Base class for analysis states.  Subclasses own the representation."""

    def copy(self) -> "AbstractState":
        raise NotImplementedError

    def join(self, other: "AbstractState") -> None:
        """Merge ``other`` into ``self`` (in place) at a control-flow join."""
        raise NotImplementedError


class ForwardAnalysis:
    """Subclass and override :meth:`transfer` (and the ``with`` hooks)."""

    def transfer(self, stmt: ast.stmt, state: AbstractState) -> None:
        """Interpret one simple statement (or a compound header) in place."""

    def enter_with(self, stmt: ast.stmt, state: AbstractState) -> None:
        """Bind ``with``-item targets before the body runs.

        ``stmt`` is an ``ast.With`` or ``ast.AsyncWith``.
        """

    def exit_with(self, stmt: ast.stmt, state: AbstractState) -> None:
        """Model context-manager ``__exit__`` after the body ran."""

    # -- driver ------------------------------------------------------------

    def run(self, body: Sequence[ast.stmt], state: AbstractState) -> None:
        for stmt in body:
            self._step(stmt, state)

    def _step(self, stmt: ast.stmt, state: AbstractState) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            self.transfer(stmt, state)
            then_state = state.copy()
            self.run(stmt.body, then_state)
            self.run(stmt.orelse, state)
            state.join(then_state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self.transfer(stmt, state)
            body_state = state.copy()
            self.run(stmt.body, body_state)
            self.run(stmt.orelse, body_state)
            state.join(body_state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.enter_with(stmt, state)
            self.run(stmt.body, state)
            self.exit_with(stmt, state)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body, state)
            for handler in stmt.handlers:
                self.run(handler.body, state)
            self.run(stmt.orelse, state)
            self.run(stmt.finalbody, state)
        else:
            self.transfer(stmt, state)

    def analyze(
        self, func: ast.AST, state: AbstractState
    ) -> AbstractState:
        """Run the analysis over a function body and return the final state."""
        body: List[ast.stmt] = getattr(func, "body", [])
        self.run(body, state)
        return state

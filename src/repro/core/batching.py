"""Batch-size policy (Table 6 of the paper).

*Aggressive* (and *forestall*, which inherits the dependence) submit disk
requests in batches so the CSCAN scheduler has requests to reorder; the
paper tuned one batch size per array size:

====== =====
disks  batch
====== =====
1      80
2–3    40
4–5    16
6–7    8
>7     4
====== =====
"""

from typing import Optional

#: Table 6: batch sizes used for aggressive, keyed by number of disks.
TABLE6_BATCH_SIZES = {1: 80, 2: 40, 3: 40, 4: 16, 5: 16, 6: 8, 7: 8}

#: Batch size for arrays larger than seven disks.
TABLE6_DEFAULT = 4


def batch_size_for(num_disks: int, override: Optional[int] = None) -> int:
    """Return the Table 6 batch size for ``num_disks`` (or the override)."""
    if override is not None:
        if override < 1:
            raise ValueError("batch size must be positive")
        return override
    return TABLE6_BATCH_SIZES.get(num_disks, TABLE6_DEFAULT)

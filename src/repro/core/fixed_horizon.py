"""The fixed horizon algorithm (TIP2 restricted to one hinting process).

    Whenever there is a missing block at most H references in the future,
    issue a fetch for that block, replacing the cached block whose next
    reference is furthest in the future, provided that reference is further
    than H accesses in the future.

``H`` is the ratio of the average disk response time to the time to read a
block from the cache: the paper uses 15 ms / 243 µs ≈ 62.  Fixed horizon
never looks beyond ``H`` references, so it can leave disks idle (and stall)
when bandwidth is scarce — the central trade-off the paper studies.  It may
hold up to ``H`` outstanding requests, giving the disk scheduler latitude.
"""

from __future__ import annotations

from typing import cast

from repro.core.policy import MissingScanner, PrefetchPolicy, SimulatorLike, Victim

#: The paper's baseline prefetch horizon (15 ms / 243 µs).
DEFAULT_HORIZON = 62


class FixedHorizon(PrefetchPolicy):
    """Prefetch exactly the missing blocks within ``horizon`` references."""

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        super().__init__()
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.horizon = horizon
        if horizon == DEFAULT_HORIZON:
            self.name = "fixed-horizon"
        else:
            self.name = f"fixed-horizon(H={horizon})"
        self._scanner = cast(MissingScanner, None)  # set in bind()

    def bind(self, sim: SimulatorLike) -> None:
        super().bind(sim)
        self._scanner = MissingScanner(sim)

    def on_evict(self, block: int, next_use: float) -> None:
        self._scanner.invalidate(next_use)

    def before_reference(self, cursor: int, now: float) -> None:
        self._scan(cursor)

    def on_disk_idle(self, disk: int, now: float) -> None:
        self._scan(self.sim.cursor)

    def _scan(self, cursor: int) -> None:
        sim = self.sim
        end = cursor + self.horizon
        boundary = cursor + self.horizon  # victims must be needed after this
        issued_floor = end
        for position, block in self._scanner.missing_in(cursor, end):
            victim = self._victim_beyond_horizon(cursor, boundary)
            if victim is False:
                issued_floor = position
                break
            self.issue(block, victim)
        self._scanner.floor = max(self._scanner.floor, min(issued_floor, end))

    def _victim_beyond_horizon(self, cursor: int, boundary: int) -> Victim:
        """Free buffer (None), a victim needed after the horizon, or False."""
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        victim = sim.eviction_heap.best_victim(
            cursor, exclude=sim.protected_blocks()
        )
        if victim is None:
            return False
        # The boundary can lie past the end of the stream, so "never
        # referenced again" (== index.never) must stay evictable there.
        next_use = sim.index.next_use(victim, cursor)
        if next_use != sim.index.never and next_use <= boundary:
            return False
        return victim

"""Multiple processes sharing the cache and the disk array.

The paper studies one fully-hinted process and defers the multi-process
case to TIP2 (Patterson et al. [25]) and future work: how should buffers
and disk bandwidth be divided among processes, only some of which hint?
This module implements that generalization:

* each process runs its own trace under its own policy, with private
  accounting (compute/driver/stall/elapsed per process);
* all processes share one :class:`~repro.disk.array.DiskArray` — a free
  disk is offered to the policies in rotating order, so no process can
  monopolize the array by callback position;
* the buffer cache is *partitioned*: every process owns a
  :class:`~repro.core.cache.BufferCache` slice, and an **allocator**
  decides the slice sizes:

  - :class:`StaticAllocator` — fixed shares (TIP2's baseline);
  - :class:`CostBenefitAllocator` — TIP2's idea in simplified form:
    periodically move buffers from the process with the lowest recent
    stall-per-buffer toward the one with the highest, since a stalling
    hinting process can convert a buffer directly into prefetch depth.

Block identities are namespaced per process, so two traces may use the
same small integers without colliding in the shared array.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.cache import BufferCache
from repro.core.engine import SimConfig
from repro.core.nextref import EvictionHeap, NextRefIndex, ScanSupport
from repro.core.policy import PrefetchPolicy
from repro.core.results import SimulationResult
from repro.disk.array import DiskArray, DriveModel, Placement
from repro.disk.drive import DiskDrive
from repro.disk.simple import SimpleDrive
from repro.trace.trace import Trace

_EVENT_DISK = 0
_EVENT_APP = 1

#: Stride separating per-process block namespaces in the shared array.
_NAMESPACE_STRIDE = 1 << 32


@dataclass
class ProcessResult:
    """Per-process outcome plus the shared-run aggregate view."""

    results: List[SimulationResult]

    @property
    def makespan_ms(self) -> float:
        return max(r.elapsed_ms for r in self.results)

    @property
    def total_stall_ms(self) -> float:
        return sum(r.stall_ms for r in self.results)

    def __iter__(self) -> Iterator[SimulationResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> SimulationResult:
        return self.results[index]


class StaticAllocator:
    """Fixed buffer shares, proportional to the given weights."""

    name = "static"
    #: Simulated-time interval between rebalances; None disables them.
    period_ms: Optional[float] = None

    def __init__(self, weights: Optional[Sequence[float]] = None) -> None:
        self.weights = weights

    def initial_shares(self, total: int, num_processes: int) -> List[int]:
        weights = self.weights or [1.0] * num_processes
        if len(weights) != num_processes:
            raise ValueError("one weight per process required")
        scale = total / sum(weights)
        shares = [max(1, int(w * scale)) for w in weights]
        shares[0] += total - sum(shares)  # rounding drift to process 0
        return shares

    def rebalance(self, sim: MultiProcessSimulator) -> None:
        """Static allocation never moves buffers."""


class CostBenefitAllocator(StaticAllocator):
    """Move buffers toward the process whose stalls they can cure.

    Every ``period_ms`` of simulated time, compares each live process's
    stall accumulated since the last rebalance; one buffer (per period,
    per donor) migrates from the least-stalled to the most-stalled process
    when the gap is material.  This is TIP2's cost-benefit estimate with
    the bookkeeping radically simplified: recent stall stands in for the
    marginal benefit of a buffer.
    """

    name = "cost-benefit"

    def __init__(self, weights: Optional[Sequence[float]] = None,
                 period_ms: float = 250.0, min_share: int = 8,
                 step: int = 4) -> None:
        super().__init__(weights)
        self.period_ms = period_ms
        self.min_share = min_share
        self.step = step
        self._last_stall: List[float] = []

    def rebalance(self, sim: MultiProcessSimulator) -> None:
        live = [p for p in sim.processes if not p.done]
        if len(live) < 2:
            return
        if not self._last_stall:
            self._last_stall = [0.0] * len(sim.processes)
        deltas = {
            p.pid: p.stall_total - self._last_stall[p.pid] for p in live
        }
        for p in live:
            self._last_stall[p.pid] = p.stall_total
        needy = max(live, key=lambda p: deltas[p.pid])
        donor = min(live, key=lambda p: deltas[p.pid])
        if needy is donor:
            return
        if deltas[needy.pid] - deltas[donor.pid] <= 1e-9:
            return
        moved = donor.cache.shrink(self.step, floor=self.min_share)
        if moved:
            needy.cache.grow(moved)


class _SharedSlice(BufferCache):
    """A process's partition of the shared cache, resizable at runtime."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.allow_overflow = True  # shrinks drain via normal evictions

    def shrink(self, count: int, floor: int) -> int:
        """Give up to ``count`` buffers away (capacity floor respected).

        Over-occupancy is tolerated: the slice simply refuses new fetches
        until evictions drain it below the new capacity.
        """
        granted = max(0, min(count, self.capacity - floor))
        self.capacity -= granted
        return granted

    def grow(self, count: int) -> None:
        self.capacity += count

    @property
    def free_buffers(self) -> int:
        return max(0, self.capacity - len(self.resident) - len(self.in_flight))


class _Process:
    """One application's private simulation state."""

    def __init__(
        self,
        pid: int,
        trace: Trace,
        policy: PrefetchPolicy,
        cache: _SharedSlice,
        sim: MultiProcessSimulator,
    ) -> None:
        self.pid = pid
        self.trace = trace
        self.policy = policy
        self.cache = cache
        self.sim = sim
        offset = pid * _NAMESPACE_STRIDE
        self.blocks = [b + offset for b in trace.blocks]
        self.app_blocks = self.blocks
        self.compute_ms = trace.compute_ms
        # The multiprocess engine does not inject faults; the attribute
        # exists because policy scanners skip a simulator's lost blocks.
        self.lost_blocks: FrozenSet[int] = frozenset()
        self.index = NextRefIndex(self.blocks)
        self.eviction_heap = EvictionHeap(self.index, cache.resident)
        # Namespaced block ids are far too sparse for a dense present mask;
        # policies fall back to the scalar scan loops.
        self.scan: Optional[ScanSupport] = None
        self.cursor = 0
        self.debt = 0.0
        self.waiting_block: Optional[int] = None
        self.retry_miss = False
        self.stall_start = 0.0
        self.done = False
        self.compute_total = 0.0
        self.driver_total = 0.0
        self.stall_total = 0.0
        self.elapsed = 0.0
        self.fetch_count = 0

    # -- the Simulator interface policies expect ------------------------------

    @property
    def num_disks(self) -> int:
        return self.sim.array.num_disks

    @property
    def array(self) -> DiskArray:
        return self.sim.array

    def protected_blocks(self) -> Set[int]:
        protected: Set[int] = set()
        if self.waiting_block is not None:
            protected.add(self.waiting_block)
        if self.cursor < len(self.app_blocks):
            protected.add(self.app_blocks[self.cursor])
        return protected

    def reference_block(self, cursor: int) -> int:
        return self.app_blocks[cursor]

    def disk_of(self, block: int) -> int:
        return self.sim.disk_of(block)

    def lbn_of(self, block: int) -> int:
        return self.sim.lbn_of(block)

    def issue_fetch(self, block: int, victim: Optional[int]) -> None:
        self.sim.issue_fetch(self, block, victim)


class MultiProcessSimulator:
    """Run several (trace, policy) pairs against shared disks and cache."""

    def __init__(
        self,
        workloads: Sequence[Tuple[Trace, PrefetchPolicy]],
        num_disks: int,
        config: Optional[SimConfig] = None,
        allocator: Optional[StaticAllocator] = None,
    ) -> None:
        if not workloads:
            raise ValueError("need at least one process")
        self.config = config if config is not None else SimConfig()
        self.num_disks = num_disks
        self.allocator = allocator if allocator is not None else StaticAllocator()
        self.array = self._build_array()
        self._disk: Dict[int, int] = {}
        self._lbn: Dict[int, int] = {}

        shares = self.allocator.initial_shares(
            self.config.cache_blocks, len(workloads)
        )
        self.processes: List[_Process] = []
        for pid, (trace, policy) in enumerate(workloads):
            cache = _SharedSlice(shares[pid])
            process = _Process(pid, trace, policy, cache, self)
            self.processes.append(process)
            self._place_blocks(process)
            policy.bind(process)

        self._owner_of_request: Dict[int, _Process] = {}
        self._events: List[Tuple[float, int, int, int]] = []
        self._event_seq = 0
        self._offer_start = 0
        self._service_in_progress = [0.0] * num_disks
        self._last_rebalance = 0.0

    # -- construction ---------------------------------------------------------

    def _build_array(self) -> DiskArray:
        config = self.config
        factory: Callable[[], DriveModel]
        if config.disk_model == "hp97560":
            factory = lambda: DiskDrive(config.geometry, readahead=config.readahead)
        else:
            factory = lambda: SimpleDrive(
                access_ms=config.simple_access_ms,
                sequential_ms=config.simple_sequential_ms,
            )
        return DiskArray(
            self.num_disks, drive_factory=factory,
            discipline=config.discipline, geometry=config.geometry,
        )

    def _place_blocks(self, process: _Process) -> None:
        total = self.config.geometry.total_blocks * self.num_disks
        placement = Placement(
            total, seed=self.config.placement_seed + process.pid
        )
        files = process.trace.files or {}
        offset = process.pid * _NAMESPACE_STRIDE
        layout = self.array.layout
        for namespaced in process.index.unique_blocks():
            raw = namespaced - offset
            identity = files.get(raw, (process.pid, raw))
            if not isinstance(identity, tuple):
                identity = (process.pid, raw)
            global_block = placement.place(identity)
            self._disk[namespaced] = layout.disk_of(global_block)
            self._lbn[namespaced] = layout.lbn_of(global_block)

    def disk_of(self, block: int) -> int:
        return self._disk[block]

    def lbn_of(self, block: int) -> int:
        return self._lbn[block]

    # -- shared fetch path ------------------------------------------------------

    def issue_fetch(
        self, process: _Process, block: int, victim: Optional[int]
    ) -> None:
        process.cache.begin_fetch(block, victim)
        if victim is not None:
            # next_use depends only on the trace, not on cache state, so
            # computing it after begin_fetch is equivalent.
            victim_next_use = process.index.next_use(victim, process.cursor)
            process.policy.on_evict(victim, victim_next_use)
        request = self.array.submit(self._disk[block], block, self._lbn[block])
        self._owner_of_request[request.seq] = process
        overhead = self.config.driver_overhead_ms
        process.driver_total += overhead
        process.debt += overhead
        process.fetch_count += 1

    # -- events -------------------------------------------------------------------

    def _push(self, time: float, kind: int, payload: int = 0) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (time, kind, self._event_seq, payload))

    def _start_disks(self, now: float) -> None:
        for disk in range(self.num_disks):
            started = self.array.start_next(disk, now)
            if started is None:
                continue
            _request, completion, breakdown = started
            self._service_in_progress[disk] = breakdown.total
            self._push(completion, _EVENT_DISK, disk)

    def _offer_disk(self, disk: int, now: float) -> None:
        """Offer a free disk to every live policy, rotating who goes first."""
        live = [p for p in self.processes if not p.done]
        if not live:
            return
        start = self._offer_start % len(live)
        self._offer_start += 1
        for i in range(len(live)):
            process = live[(start + i) % len(live)]
            process.policy.on_disk_idle(disk, now)

    def _disk_complete(self, disk: int, now: float) -> None:
        request = self.array.complete(disk)
        owner = self._owner_of_request.pop(request.seq)
        owner.cache.complete_fetch(request.block)
        owner.eviction_heap.push(request.block, owner.cursor)
        owner.policy.on_fetch_complete(disk, self._service_in_progress[disk])
        self._offer_disk(disk, now)
        self._start_disks(now)
        for process in self.processes:
            if process.done or process.waiting_block is None:
                continue
            arrived = process is owner and process.waiting_block == request.block
            # Parked misses (retry_miss) are woken by *any* completion:
            # allocator moves and protection sets shift between events, so
            # the retry is cheap and re-parks if still stuck.
            if arrived or process.retry_miss:
                process.waiting_block = None
                process.retry_miss = False
                process.stall_total += max(0.0, now - process.stall_start)
                self._push(max(now, process.stall_start), _EVENT_APP,
                           process.pid)

    def _app_step(self, process: _Process, now: float) -> None:
        if process.done:
            return
        if process.debt > 0.0:
            debt, process.debt = process.debt, 0.0
            self._push(now + debt, _EVENT_APP, process.pid)
            return
        if process.cursor >= len(process.app_blocks):
            process.done = True
            process.elapsed = now
            return
        process.policy.before_reference(process.cursor, now)
        if process.debt > 0.0:
            self._start_disks(now)
            debt, process.debt = process.debt, 0.0
            self._push(now + debt, _EVENT_APP, process.pid)
            return
        block = process.app_blocks[process.cursor]
        if block in process.cache:
            compute = process.compute_ms[process.cursor]
            process.compute_total += compute
            process.policy.on_reference_served(process.cursor, compute)
            process.cursor += 1
            process.eviction_heap.push(block, process.cursor)
            self._push(now + compute, _EVENT_APP, process.pid)
        elif process.cache.is_in_flight(block):
            process.waiting_block = block
            process.stall_start = now
        else:
            process.policy.on_miss(process.cursor, now)
            if not process.cache.present_or_coming(block):
                if not process.cache.in_flight and not any(
                    p.cache.in_flight for p in self.processes
                ):
                    raise RuntimeError(
                        f"process {process.pid} wedged at cursor "
                        f"{process.cursor}"
                    )
                process.retry_miss = True
            self._start_disks(now)
            debt, process.debt = process.debt, 0.0
            process.waiting_block = block
            process.stall_start = now + debt

    # -- main loop -------------------------------------------------------------------

    def run(self) -> ProcessResult:
        for process in self.processes:
            self._push(0.0, _EVENT_APP, process.pid)
        rebalance_period = self.allocator.period_ms
        while self._events and not all(p.done for p in self.processes):
            now, kind, _seq, payload = heapq.heappop(self._events)
            if kind == _EVENT_DISK:
                self._disk_complete(payload, now)
            else:
                self._app_step(self.processes[payload], now)
            if (
                rebalance_period is not None
                and now - self._last_rebalance >= rebalance_period
            ):
                self._last_rebalance = now
                self.allocator.rebalance(self)
        if not all(p.done for p in self.processes):
            raise RuntimeError("multi-process simulation deadlocked")
        makespan = max(p.elapsed for p in self.processes)
        utilization = self.array.utilization(makespan)
        return ProcessResult(
            [self._result_for(p, utilization) for p in self.processes]
        )

    def _result_for(
        self, process: _Process, utilization: float
    ) -> SimulationResult:
        elapsed = process.elapsed
        result = SimulationResult(
            trace_name=process.trace.name,
            policy_name=process.policy.name,
            num_disks=self.num_disks,
            cache_blocks=process.cache.capacity,
            fetches=process.fetch_count,
            compute_ms=process.compute_total,
            driver_ms=process.driver_total,
            stall_ms=process.stall_total,
            elapsed_ms=elapsed,
            average_fetch_ms=self.array.average_service_ms(),
            disk_utilization=utilization,
            references=len(process.app_blocks),
            cache_hits=len(process.app_blocks) - process.fetch_count,
        )
        result.check_accounting(tolerance_ms=1e-6 * max(1.0, elapsed))
        return result

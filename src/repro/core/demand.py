"""Demand fetching with optimal offline replacement.

The paper's baseline: no prefetching at all, but — to make the comparison
"as favorable as possible to demand fetching" — every fetch replaces the
cached block whose next reference is furthest in the future (Belady's MIN,
feasible here because hints disclose the whole access sequence).
"""

from repro.core.policy import PrefetchPolicy


class DemandFetching(PrefetchPolicy):
    """Fetch only on a miss; evict by Belady's MIN rule."""

    name = "demand"

    # before_reference / on_disk_idle intentionally do nothing: the inherited
    # on_miss already implements demand fetching with optimal replacement.

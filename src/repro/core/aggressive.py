"""The multi-disk aggressive algorithm (after Cao et al.'s single-disk
aggressive).

    Whenever a disk is free, prefetch the first missing block on that disk,
    replacing the block whose next reference is furthest in the future,
    under the condition that the next access to the evicted block is after
    the next access to the block being fetched (do no harm).

Requests are submitted in batches (Table 6) so the disk scheduler can
reorder them.  When several disks are free at once, missing blocks are
considered in increasing request-index order, each routed to its disk,
until every free disk's batch fills or do-no-harm stops further fetching —
exactly the implementation described in section 2.7.
"""

from __future__ import annotations

from typing import Optional, Set, cast

from repro.core.batching import batch_size_for
from repro.core.policy import MissingScanner, PrefetchPolicy, SimulatorLike, Victim


class Aggressive(PrefetchPolicy):
    """Prefetch as early as the do-no-harm rule allows, in batches."""

    def __init__(self, batch_size: Optional[int] = None) -> None:
        super().__init__()
        self._batch_override = batch_size
        if batch_size is None:
            self.name = "aggressive"
        else:
            self.name = f"aggressive(batch={batch_size})"
        self.batch_size = 0  # resolved against the array size in bind()
        self._scanner = cast(MissingScanner, None)  # set in bind()

    def bind(self, sim: SimulatorLike) -> None:
        super().bind(sim)
        self.batch_size = batch_size_for(sim.num_disks, self._batch_override)
        self._scanner = MissingScanner(sim)

    def on_evict(self, block: int, next_use: float) -> None:
        self._scanner.invalidate(next_use)

    def before_reference(self, cursor: int, now: float) -> None:
        self._fill_free_disks(cursor)

    def on_disk_idle(self, disk: int, now: float) -> None:
        self._fill_free_disks(self.sim.cursor)

    def on_miss(self, cursor: int, now: float) -> None:
        super().on_miss(cursor, now)
        self._scanner.floor = max(self._scanner.floor, cursor + 1)
        self._fill_free_disks(cursor)

    # -- batch construction ------------------------------------------------------

    def _free_disks(self) -> Set[int]:
        """Disks that are idle with an empty queue (ready for a new batch)."""
        array = self.sim.array
        return {
            disk
            for disk in range(array.num_disks)
            if array.is_idle(disk) and array.queue_length(disk) == 0
        }

    def _fill_free_disks(self, cursor: int) -> None:
        sim = self.sim
        free = self._free_disks()
        if not free:
            return
        budgets = {disk: self.batch_size for disk in sorted(free)}
        index = sim.index
        new_floor: Optional[int] = None
        for position, block in self._scanner.missing_in(cursor, len(sim.blocks)):
            disk = sim.disk_of(block)
            budget = budgets.get(disk)
            if budget is None or budget == 0:
                # This block's disk is busy or its batch is full; it stays
                # missing, so the scan floor cannot move past it.
                if new_floor is None:
                    new_floor = position
                if all(b == 0 for b in budgets.values()):
                    break
                continue
            victim = self._victim_for(cursor, position)
            if victim is False:
                # Do-no-harm disallows any further fetch (later positions
                # would need an even later-referenced victim).
                if new_floor is None:
                    new_floor = position
                break
            self.issue(block, victim)
            budgets[disk] = budget - 1
        else:
            if new_floor is None:
                new_floor = len(sim.blocks)
        if new_floor is None:
            new_floor = len(sim.blocks)
        self._scanner.floor = max(self._scanner.floor, new_floor)

    def _victim_for(self, cursor: int, fetch_position: int) -> Victim:
        """Free buffer (None), a do-no-harm-compatible victim, or False."""
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        victim = sim.eviction_heap.best_victim(
            cursor, exclude=sim.protected_blocks()
        )
        if victim is None:
            return False
        # next_use is index.never (> any real fetch position) for a block
        # that is never referenced again, so one exact comparison suffices.
        if sim.index.next_use(victim, cursor) <= fetch_position:
            return False
        return victim

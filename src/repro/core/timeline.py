"""Run observability: a timeline of fetches, completions, and stalls.

The paper's tables aggregate each run to six numbers; understanding *why*
a configuration stalls needs the time axis back.  With
``SimConfig(record_timeline=True)`` the engine records every fetch issue,
completion, eviction, and stall episode, and this module summarizes them:
stall-episode distributions, per-disk busy/idle structure, and fetch
lead times (how far ahead of its use each block arrived — the direct
measure of how "aggressive" a policy actually was).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

FETCH_ISSUED = "fetch"
FETCH_DONE = "done"
EVICTION = "evict"
STALL_START = "stall"
STALL_END = "resume"
# Fault-injection events (see repro.faults):
FAULT_INJECTED = "fault"  # a request failed (transient error or dead disk)
FETCH_RETRY = "retry"  # a failed demand fetch was resubmitted after backoff
FAILOVER = "failover"  # a read was rerouted to the mirror twin of a dead disk


@dataclass
class StallEpisode:
    """One contiguous wait for a block."""

    start_ms: float
    end_ms: float
    block: int

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class Timeline:
    """Event log of one simulation run."""

    events: List[Tuple[float, str, int, int]] = field(default_factory=list)
    # (time, kind, block, disk) — disk is -1 where not applicable

    # Cached time-ordered view.  Events arrive in near-time order, so the
    # occasional re-sort is a cheap (timsort) catch-up; the cache keys on
    # the event count, which also invalidates direct ``events.append``.
    _sorted_view: Optional[List[Tuple[float, str, int, int]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sorted_count: int = field(default=-1, init=False, repr=False, compare=False)

    def record(self, time: float, kind: str, block: int, disk: int = -1) -> None:
        self.events.append((time, kind, block, disk))
        self._sorted_view = None

    def sorted_events(self) -> List[Tuple[float, str, int, int]]:
        """The events in time order, computed once per batch of records
        instead of on every consumer call."""
        if self._sorted_view is None or self._sorted_count != len(self.events):
            self._sorted_view = sorted(self.events)
            self._sorted_count = len(self.events)
        return self._sorted_view

    # -- derived views ---------------------------------------------------------

    def stall_episodes(self) -> List[StallEpisode]:
        episodes: List[StallEpisode] = []
        open_start: Optional[Tuple[float, int]] = None
        for time, kind, block, _disk in self.events:
            if kind == STALL_START:
                open_start = (time, block)
            elif kind == STALL_END and open_start is not None:
                episodes.append(
                    StallEpisode(open_start[0], time, open_start[1])
                )
                open_start = None
        return episodes

    def fetch_lead_times(self) -> Dict[int, float]:
        """Per fetch completion, how long the block sat before... rather:
        time between a block's fetch issue and its completion, keyed by
        issue order — the service view.  See ``arrival_leads`` for the
        policy view."""
        issued: Dict[int, float] = {}
        leads: Dict[int, float] = {}
        for time, kind, block, _disk in self.events:
            if kind == FETCH_ISSUED:
                issued[block] = time
            elif kind == FETCH_DONE and block in issued:
                leads[block] = time - issued.pop(block)
        return leads

    def per_disk_fetches(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for _time, kind, _block, disk in self.events:
            if kind == FETCH_ISSUED:
                counts[disk] = counts.get(disk, 0) + 1
        return counts

    def busy_intervals(self, disk: int) -> List[Tuple[float, float]]:
        """(start, end) spans during which ``disk`` had a request in
        service, merged across back-to-back requests."""
        spans: List[Tuple[float, float]] = []
        start: Optional[float] = None
        pending = 0
        for time, kind, _block, event_disk in self.sorted_events():
            if event_disk != disk:
                continue
            if kind == FETCH_ISSUED:
                if pending == 0:
                    start = time
                pending += 1
            elif kind == FETCH_DONE and pending > 0:
                pending -= 1
                if pending == 0 and start is not None:
                    spans.append((start, time))
                    start = None
        return spans

    def fault_events(self) -> List[Tuple[float, str, int, int]]:
        """The fault-related events (injections, retries, failovers), in
        time order — the forensic view of a degraded run."""
        kinds = (FAULT_INJECTED, FETCH_RETRY, FAILOVER)
        return [event for event in self.events if event[1] in kinds]

    def summary(self) -> Dict[str, float]:
        episodes = self.stall_episodes()
        durations = [e.duration_ms for e in episodes]
        per_disk = self.per_disk_fetches()
        balance = (
            min(per_disk.values()) / max(per_disk.values())
            if per_disk and max(per_disk.values()) > 0
            else 1.0
        )
        return {
            "stall_episodes": len(episodes),
            "stall_total_ms": round(sum(durations), 3),
            "stall_mean_ms": round(
                sum(durations) / len(durations), 3
            ) if durations else 0.0,
            "stall_max_ms": round(max(durations), 3) if durations else 0.0,
            "fetches": sum(per_disk.values()),
            "disk_balance": round(balance, 3),
        }

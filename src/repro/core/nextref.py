"""Next-reference index structures over a known request sequence.

All four algorithms exploit full advance knowledge of the reference stream.
The two queries they need constantly are:

* ``next_use(block, cursor)`` — the first position at or after the cursor
  that references ``block`` (:attr:`NextRefIndex.never` if none), used by
  the *optimal replacement* and *do-no-harm* rules; and
* "the resident block whose next reference is furthest in the future" —
  the optimal eviction victim.

The index precomputes a **successor array**: ``succ[i]`` is the next
position after ``i`` that references ``blocks[i]`` (``len(blocks)`` when
there is none).  Next-use queries then walk the array with a per-block
cached position — amortized O(1) for the monotone cursors the engine
produces, with an exact bisect fallback when a cursor moves backwards.
"Never referenced again" is the integer ``len(blocks)``, one past the end
of the stream, so every comparison in the hot path is an exact integer
comparison — no float identity, no ``inf`` arithmetic (the hazard class
simlint SL009 now rejects).

Construction is vectorized with numpy when available and falls back to a
stdlib ``array``-module build otherwise; both produce bit-identical
structures (see tests/test_batched_core.py).
"""

from __future__ import annotations

import bisect
import heapq
import os
from array import array
from typing import (
    Any,
    Callable,
    Container,
    Dict,
    Iterator,
    KeysView,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Optional numpy handle.  ``REPRO_PURE_PYTHON=1`` forces the stdlib path
#: even when numpy is importable (used by tests and CI to prove the two
#: paths are bit-identical).
_np: Any
try:
    import numpy

    _np = numpy
except ImportError:
    _np = None
if os.environ.get("REPRO_PURE_PYTHON"):
    _np = None

HAVE_NUMPY = _np is not None

#: Float sentinel retained for the analysis layer's reuse-distance series
#: (cold misses have no previous reference).  The simulator core itself
#: uses :attr:`NextRefIndex.never` — an int — for "never referenced again".
INFINITE = float("inf")


class NextRefIndex:
    """Successor-array next-use index with an exact integer sentinel."""

    def __init__(self, blocks: Sequence[int]) -> None:
        self.blocks = blocks
        n = len(blocks)
        #: "Never referenced again": one past the end of the stream.  Every
        #: real next-use is < ``never``, so ordering comparisons against
        #: positions behave exactly like the old ``float('inf')`` sentinel
        #: while staying in exact integer arithmetic.
        self.never: int = n
        if _np is not None:
            try:
                succ, first = self._build_numpy(blocks, n)
            except (ValueError, TypeError, OverflowError):
                # Non-integer block ids (the theory model uses labels) or
                # ids beyond int64: the stdlib build handles any hashable.
                succ, first = self._build_python(blocks, n)
        else:
            succ, first = self._build_python(blocks, n)
        self._succ = succ
        #: block -> first position referencing it, in first-occurrence order
        #: (both construction paths produce the identical dict).
        self._first = first
        #: block -> [last queried cursor, cached first position >= it].
        self._state: Dict[int, List[int]] = {
            block: [0, position] for block, position in first.items()
        }
        self._positions: Optional[Dict[int, List[int]]] = None

    @staticmethod
    def _build_numpy(
        blocks: Sequence[int], n: int
    ) -> Tuple["array[int]", Dict[int, int]]:
        first: Dict[int, int] = {}
        succ = array("q")
        if n == 0:
            return succ, first
        blk = _np.asarray(blocks, dtype=_np.int64)
        order = _np.argsort(blk, kind="stable")
        succ_np = _np.full(n, n, dtype=_np.int64)
        same = blk[order[:-1]] == blk[order[1:]]
        succ_np[order[:-1][same]] = order[1:][same]
        succ.frombytes(succ_np.tobytes())
        starts = _np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = blk[order[1:]] != blk[order[:-1]]
        for position in _np.sort(order[starts]).tolist():
            first[blocks[position]] = position
        return succ, first

    @staticmethod
    def _build_python(
        blocks: Sequence[int], n: int
    ) -> Tuple["array[int]", Dict[int, int]]:
        succ = array("q", [n]) * n if n else array("q")
        nxt: Dict[int, int] = {}
        for position in range(n - 1, -1, -1):
            block = blocks[position]
            later = nxt.get(block)
            if later is not None:
                succ[position] = later
            nxt[block] = position
        first = dict(sorted(nxt.items(), key=lambda item: item[1]))
        return succ, first

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def distinct_blocks(self) -> int:
        return len(self._first)

    def unique_blocks(self) -> KeysView[int]:
        """Distinct referenced blocks, in first-occurrence order."""
        return self._first.keys()

    @property
    def positions(self) -> Dict[int, List[int]]:
        """Per-block sorted position lists (compat view, built lazily —
        only the cold-query bisect path and a few tests need it)."""
        if self._positions is None:
            table: Dict[int, List[int]] = {}
            for position, block in enumerate(self.blocks):
                table.setdefault(block, []).append(position)
            self._positions = table
        return self._positions

    def next_use(self, block: int, cursor: int) -> int:
        """First position >= cursor referencing ``block``, else ``never``.

        Queries for one block normally use nondecreasing cursors (the
        application cursor is monotone) and cost amortized O(1) via the
        successor array.  A backwards cursor is detected against the
        per-block anchor and answered exactly with a bisect instead of
        silently returning a too-late position.
        """
        state = self._state.get(block)
        if state is None:
            return self.never
        anchor, position = state
        if cursor < anchor:
            position = self.next_use_cold(block, cursor)
        else:
            if cursor > self.never:
                cursor = self.never
            succ = self._succ
            while position < cursor:
                position = succ[position]
        state[0] = cursor
        state[1] = position
        return position

    def next_use_cold(self, block: int, cursor: int) -> int:
        """Like :meth:`next_use` but stateless: exact for any cursor."""
        plist = self.positions.get(block)
        if plist is None:
            return self.never
        index = bisect.bisect_left(plist, cursor)
        if index == len(plist):
            return self.never
        return plist[index]


class ReferenceNextRefIndex:
    """Executable specification for :class:`NextRefIndex`.

    The original dict-of-lists structure, kept deliberately slow and
    obvious: every query bisects the block's sorted position list, so it
    is exact for *any* cursor order with no cached state to go stale.  The
    randomized agreement tests drive :class:`NextRefIndex` (both the numpy
    and the stdlib construction) against this class.
    """

    def __init__(self, blocks: Sequence[int]) -> None:
        self.blocks = blocks
        self.never: int = len(blocks)
        self.positions: Dict[int, List[int]] = {}
        for position, block in enumerate(blocks):
            self.positions.setdefault(block, []).append(position)

    def __len__(self) -> int:
        return len(self.blocks)

    def next_use(self, block: int, cursor: int) -> int:
        plist = self.positions.get(block)
        if plist is None:
            return self.never
        index = bisect.bisect_left(plist, cursor)
        if index == len(plist):
            return self.never
        return plist[index]

    next_use_cold = next_use


class EvictionHeap:
    """Lazy max-heap yielding the resident block with the furthest next use.

    Entries go stale when a block is evicted or when the cursor passes one
    of its references; staleness is detected on pop by revalidating against
    the index and the resident set.  Keys are negated integer positions
    (``-index.never`` for "never again"), so ordering and revalidation are
    exact integer comparisons — never float identity or float ``!=``.
    """

    def __init__(self, index: NextRefIndex, resident: Container[int]) -> None:
        self._index = index
        self._resident = resident  # any container supporting "in"
        self._heap: List[Tuple[int, int]] = []  # (-next_use, block)

    def push(self, block: int, cursor: int) -> None:
        key = -self._index.next_use(block, cursor)
        heapq.heappush(self._heap, (key, block))

    def best_victim(self, cursor: int, exclude: Container[int] = ()) -> Optional[int]:
        """Pop/peek the resident block with the furthest next use.

        The returned block is *not* removed from the heap (the caller
        decides whether to evict); stale entries encountered along the way
        are discarded.  Blocks in ``exclude`` are skipped but kept.
        """
        skipped: List[Tuple[int, int]] = []
        victim = None
        while self._heap:
            key, block = self._heap[0]
            if block not in self._resident:
                heapq.heappop(self._heap)
                continue
            true_key = -self._index.next_use(block, cursor)
            if true_key != key:
                heapq.heapreplace(self._heap, (true_key, block))
                continue
            if block in exclude:
                skipped.append(heapq.heappop(self._heap))
                continue
            victim = block
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return victim

    def remove_is_lazy(self) -> bool:
        """Removals are lazy: evicted blocks are filtered on pop."""
        return True


class ScanSupport:
    """Vectorized missing-block candidate probes over the reference stream.

    Built by the engine when numpy is available: the stream as an int64
    array plus a dense 0/1 ``bytearray`` present mask kept in lockstep with
    the cache's ``present`` set (see ``BufferCache.attach_present_mask``).
    One :meth:`missing_candidates` call resolves a whole lookahead window;
    callers re-validate each candidate against live cache state, so the
    lazy-evaluation semantics of the scalar scan loops are preserved
    exactly (see ``MissingScanner.missing_in``).
    """

    #: Refuse to build a mask beyond this many entries: a sparse block-id
    #: space (e.g. multiprocess namespacing) would waste memory on it.
    MAX_MASK_ENTRIES = 1 << 26

    def __init__(self, blocks_arr: Any, mask: bytearray, mask_np: Any) -> None:
        self.blocks_arr = blocks_arr
        self.mask = mask
        self.mask_np = mask_np
        #: Per-position disk homes (int64), or None when the placement is
        #: load-dependent (mirrored arrays) — set via :meth:`attach_disks`.
        self.disk_by_pos: Any = None

    @classmethod
    def build(cls, blocks: Sequence[int]) -> Optional["ScanSupport"]:
        """A ScanSupport for ``blocks``, or None when ineligible (no numpy,
        empty stream, negative ids, or an unreasonably sparse id space)."""
        if _np is None or not blocks:
            return None
        try:
            blocks_arr = _np.asarray(blocks, dtype=_np.int64)
        except (OverflowError, ValueError):
            return None
        if int(blocks_arr.min()) < 0:
            return None
        size = int(blocks_arr.max()) + 1
        if size > cls.MAX_MASK_ENTRIES:
            return None
        mask = bytearray(size)
        mask_np = _np.frombuffer(mask, dtype=_np.uint8)
        return cls(blocks_arr, mask, mask_np)

    def attach_disks(self, disk_map: Dict[int, int]) -> None:
        """Precompute per-position disk homes from a static placement."""
        dense = _np.zeros(len(self.mask), dtype=_np.int64)
        for block, disk in disk_map.items():
            if 0 <= block < len(self.mask):
                dense[block] = disk
        self.disk_by_pos = dense[self.blocks_arr]

    def missing_candidates(self, start: int, end: int) -> List[int]:
        """Positions in ``[start, end)`` whose block's mask bit is clear.

        A probe, not an answer: the mask reflects the cache at call time,
        so callers that issue fetches or evict between consuming candidates
        must re-validate each one (and re-probe after an eviction).
        """
        if start >= end:
            return []
        window = self.blocks_arr[start:end]
        hits = self.mask_np[window]
        missing = _np.flatnonzero(hits == 0)
        result: List[int] = (missing + start).tolist()
        return result

    #: Candidates are materialized to Python ints in slices of this many,
    #: so a consumer that stops after a small per-disk batch budget never
    #: pays for the whole probe window.
    ITER_SLICE = 64

    def missing_candidates_iter(self, start: int, end: int) -> Iterator[int]:
        """Lazy :meth:`missing_candidates`: same positions, same order,
        converted to Python ints a slice at a time.

        On mostly-missing windows (cold sweeps, tiny caches) nearly every
        position is a hit; eagerly listing thousands of candidates a
        consumer will abandon after a dozen dominated the aggressive
        policy's profile on the synth-xl tier.
        """
        if start >= end:
            return
        window = self.blocks_arr[start:end]
        hits = self.mask_np[window]
        missing = _np.flatnonzero(hits == 0)
        step = self.ITER_SLICE
        for i in range(0, len(missing), step):
            yield from (missing[i : i + step] + start).tolist()


def first_missing_positions(
    blocks: Sequence[int],
    cursor: int,
    is_present: Callable[[int], bool],
    limit: int,
    max_count: Optional[int] = None,
) -> Iterator[int]:
    """Yield positions >= cursor whose block is missing (not present).

    Scans at most ``limit`` references ahead; duplicate blocks are reported
    only at their first missing occurrence *within one call* (the ``seen``
    set is per-call, so a block suppressed here is reported again by the
    next call).  ``is_present(block)`` must return True for blocks that are
    resident or already being fetched.
    """
    seen: Set[int] = set()
    end = min(len(blocks), cursor + limit)
    found = 0
    for position in range(cursor, end):
        block = blocks[position]
        if block in seen or is_present(block):
            continue
        seen.add(block)
        yield position
        found += 1
        if max_count is not None and found >= max_count:
            return


def first_missing_positions_batched(
    blocks: Sequence[int],
    cursor: int,
    is_present: Callable[[int], bool],
    limit: int,
    max_count: Optional[int] = None,
    scan: Optional[ScanSupport] = None,
) -> List[int]:
    """Batched twin of :func:`first_missing_positions`.

    One call resolves the whole lookahead window and returns the positions
    as a list.  With ``scan`` support the candidates come from a single
    vectorized mask probe; each candidate is still re-validated through
    ``is_present`` and the per-call duplicate suppression, so the result
    matches the reference generator exactly.  ``scan`` may only be passed
    when ``is_present`` agrees with the scan's present mask (i.e. cache
    membership): a mask hit must imply ``is_present(block)``.
    """
    if scan is None:
        return list(
            first_missing_positions(blocks, cursor, is_present, limit, max_count)
        )
    seen: Set[int] = set()
    end = min(len(blocks), cursor + limit)
    out: List[int] = []
    for position in scan.missing_candidates(cursor, end):
        block = blocks[position]
        if block in seen or is_present(block):
            continue
        seen.add(block)
        out.append(position)
        if max_count is not None and len(out) >= max_count:
            break
    return out

"""Next-reference index structures over a known request sequence.

All four algorithms exploit full advance knowledge of the reference stream.
The two queries they need constantly are:

* ``next_use(block, cursor)`` — the first position at or after the cursor
  that references ``block`` (``INFINITE`` if none), used by the *optimal
  replacement* and *do-no-harm* rules; and
* "the resident block whose next reference is furthest in the future" —
  the optimal eviction victim.

Both are served in amortized O(log n) by per-block position lists with
monotonic pointers plus a lazy max-heap over resident blocks.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Callable, Container, Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Sentinel distance for "never referenced again".
INFINITE = float("inf")


class NextRefIndex:
    """Per-block reference positions with monotone next-use queries."""

    def __init__(self, blocks: Sequence[int]) -> None:
        self.blocks = blocks
        self.positions: Dict[int, List[int]] = {}
        for index, block in enumerate(blocks):
            self.positions.setdefault(block, []).append(index)
        self._pointers: Dict[int, int] = {block: 0 for block in self.positions}
        self._last_cursor = 0

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def distinct_blocks(self) -> int:
        return len(self.positions)

    def next_use(self, block: int, cursor: int) -> float:
        """First position >= cursor referencing ``block``, else INFINITE.

        Cursors may move backwards relative to earlier queries for *other*
        blocks, but queries for the same block must use nondecreasing
        cursors — which holds because the application cursor is monotone.
        """
        plist = self.positions.get(block)
        if plist is None:
            return INFINITE
        pointer = self._pointers[block]
        while pointer < len(plist) and plist[pointer] < cursor:
            pointer += 1
        self._pointers[block] = pointer
        if pointer == len(plist):
            return INFINITE
        return plist[pointer]

    def next_use_cold(self, block: int, cursor: int) -> float:
        """Like :meth:`next_use` but without pointer caching (any cursor)."""
        plist = self.positions.get(block)
        if plist is None:
            return INFINITE
        index = bisect.bisect_left(plist, cursor)
        if index == len(plist):
            return INFINITE
        return plist[index]


class EvictionHeap:
    """Lazy max-heap yielding the resident block with the furthest next use.

    Entries go stale when a block is evicted or when the cursor passes one
    of its references; staleness is detected on pop by revalidating against
    the index and the resident set.
    """

    def __init__(self, index: NextRefIndex, resident: Container[int]) -> None:
        self._index = index
        self._resident = resident  # any container supporting "in"
        self._heap: List[Tuple[float, int]] = []  # (-next_use, block)

    def push(self, block: int, cursor: int) -> None:
        next_use = self._index.next_use(block, cursor)
        key = -next_use if next_use is not INFINITE else float("-inf")
        heapq.heappush(self._heap, (key, block))

    def best_victim(self, cursor: int, exclude: Container[int] = ()) -> Optional[int]:
        """Pop/peek the resident block with the furthest next use.

        The returned block is *not* removed from the heap (the caller
        decides whether to evict); stale entries encountered along the way
        are discarded.  Blocks in ``exclude`` are skipped but kept.
        """
        skipped: List[Tuple[float, int]] = []
        victim = None
        while self._heap:
            key, block = self._heap[0]
            if block not in self._resident:
                heapq.heappop(self._heap)
                continue
            true_next = self._index.next_use(block, cursor)
            true_key = -true_next if true_next is not INFINITE else float("-inf")
            if true_key != key:
                heapq.heappop(self._heap)
                heapq.heappush(self._heap, (true_key, block))
                continue
            if block in exclude:
                skipped.append(heapq.heappop(self._heap))
                continue
            victim = block
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return victim

    def remove_is_lazy(self) -> bool:
        """Removals are lazy: evicted blocks are filtered on pop."""
        return True


def first_missing_positions(
    blocks: Sequence[int],
    cursor: int,
    is_present: Callable[[int], bool],
    limit: int,
    max_count: Optional[int] = None,
) -> Iterator[int]:
    """Yield positions >= cursor whose block is missing (not present).

    Scans at most ``limit`` references ahead; duplicate blocks are reported
    only at their first missing occurrence.  ``is_present(block)`` must
    return True for blocks that are resident or already being fetched.
    """
    seen: Set[int] = set()
    end = min(len(blocks), cursor + limit)
    found = 0
    for position in range(cursor, end):
        block = blocks[position]
        if block in seen or is_present(block):
            continue
        seen.add(block)
        yield position
        found += 1
        if max_count is not None and found >= max_count:
            return

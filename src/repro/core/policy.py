"""The prefetching/caching policy interface and shared machinery.

A policy is consulted at the paper's two decision points — immediately
before each reference is consumed, and whenever a disk completes a request —
and reacts by issuing fetch/eviction pairs through
:meth:`PrefetchPolicy.issue`.  The engine charges driver overhead, runs the
disks, and accounts stalls; policies only decide *what to fetch, when, and
what to evict*.

Shared helpers implement the paper's optimal prefetching rules
(section 2.2):

* *optimal fetching* — fetch the missing block referenced soonest;
* *optimal replacement* — evict the resident block referenced furthest in
  the future (:meth:`PrefetchPolicy.choose_victim`);
* *do no harm* — never evict a block needed before the fetched one.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Iterable,
    Iterator,
    Literal,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    cast,
)

if TYPE_CHECKING:
    from repro.core.cache import BufferCache
    from repro.core.nextref import EvictionHeap, NextRefIndex, ScanSupport
    from repro.disk.array import DiskArray

#: What a victim choice can be: ``None`` (use a free buffer), a block to
#: evict, or ``False`` (nothing may be evicted right now — wait).
Victim = Union[int, None, Literal[False]]

#: Batched missing-scan tuning — see ``MissingScanner.missing_in``.  The
#: first ``_SCAN_PREFIX`` positions are probed scalar (consumers with small
#: batch budgets usually stop there); vectorized probes then start at
#: ``_SCAN_CHUNK_MIN`` references and double per exhausted chunk up to
#: ``_SCAN_CHUNK``.
_SCAN_CHUNK = 4096
_SCAN_CHUNK_MIN = 512
_SCAN_PREFIX = 256


class SimulatorLike(Protocol):
    """The simulator surface policies are allowed to touch.

    Implemented by :class:`repro.core.engine.Simulator` and by the
    per-process view in :mod:`repro.core.multiprocess`.  Everything here is
    read-only from the policy's perspective — simlint's SL006 rule enforces
    that policies never mutate the shared containers behind these names.
    """

    @property
    def num_disks(self) -> int: ...

    @property
    def cursor(self) -> int: ...

    @property
    def blocks(self) -> Sequence[int]: ...

    @property
    def app_blocks(self) -> Sequence[int]: ...

    @property
    def compute_ms(self) -> Sequence[float]: ...

    @property
    def lost_blocks(self) -> AbstractSet[int]: ...

    @property
    def trace(self) -> object: ...

    @property
    def cache(self) -> "BufferCache": ...

    @property
    def index(self) -> "NextRefIndex": ...

    @property
    def eviction_heap(self) -> "EvictionHeap": ...

    @property
    def array(self) -> "DiskArray": ...

    @property
    def scan(self) -> Optional["ScanSupport"]: ...

    def protected_blocks(self) -> Set[int]: ...

    def reference_block(self, cursor: int) -> int: ...

    def disk_of(self, block: int) -> int: ...

    def lbn_of(self, block: int) -> int: ...

    def issue_fetch(self, block: int, victim: Optional[int]) -> None: ...


class PrefetchPolicy:
    """Base class for all prefetching/caching algorithms."""

    name: str = "abstract"

    def __init__(self) -> None:
        # Policies are unusable before bind(); the cast spares every hook
        # an Optional check on a contract the engine already guarantees.
        self.sim = cast("SimulatorLike", None)

    # -- engine wiring --------------------------------------------------------

    def bind(self, sim: SimulatorLike) -> None:
        """Attach to a simulator; called once before the run starts."""
        self.sim = sim

    # -- decision points (overridden by algorithms) ---------------------------

    def before_reference(self, cursor: int, now: float) -> None:
        """Called just before the application consumes reference ``cursor``."""

    def on_disk_idle(self, disk: int, now: float) -> None:
        """Called when ``disk`` finishes a request and may take new work."""

    def on_miss(self, cursor: int, now: float) -> None:
        """The block at ``cursor`` is absent with no fetch in flight.

        The default demand-fetches it with the optimal replacement choice;
        prefetching policies normally avoid ever reaching this point but
        inherit it as a safety net for cold starts and timing surprises.
        """
        block = self.sim.reference_block(cursor)
        victim = self.choose_victim(cursor)
        if victim is False:
            return  # no buffer free; the engine retries after a completion
        self.issue(block, victim)

    # -- observation hooks -----------------------------------------------------

    def on_fetch_complete(self, disk: int, service_ms: float) -> None:
        """A fetch finished on ``disk`` after ``service_ms`` of service."""

    def on_reference_served(self, cursor: int, compute_ms: float) -> None:
        """Reference ``cursor`` hit in cache; the app computes for a while."""

    def on_evict(self, block: int, next_use: float) -> None:
        """``block`` was evicted; its next reference is at ``next_use``."""

    # -- shared actions ----------------------------------------------------------

    def issue(self, block: int, victim: Optional[int]) -> None:
        """Issue a fetch of ``block``, evicting ``victim`` (None = free buffer)."""
        self.sim.issue_fetch(block, victim)

    def choose_victim(self, cursor: int, exclude: Iterable[int] = ()) -> Victim:
        """Optimal replacement: free buffer first, else furthest next use.

        Returns ``None`` when a free buffer exists, a block to evict, or
        ``False`` when nothing may be evicted right now (every candidate is
        protected or in flight) — callers then wait for a completion.
        """
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        protected: AbstractSet[int] = sim.protected_blocks()
        excluded = set(exclude)
        if excluded:
            protected = protected | excluded
        victim = sim.eviction_heap.best_victim(cursor, exclude=protected)
        if victim is None:
            # Every buffer is protected or spoken for by an in-flight
            # prefetch (possible when degraded hints flood the cache).
            return False
        return victim

    def victim_allows(self, victim: Optional[int], fetch_position: int, cursor: int) -> bool:
        """Do-no-harm: may ``victim`` be evicted to fetch the block needed at
        ``fetch_position``?  Free buffers always qualify."""
        if victim is None:
            return True
        return self.sim.index.next_use(victim, cursor) > fetch_position


class MissingScanner:
    """Incremental scan for missing blocks in the reference stream.

    Maintains a *floor*: every reference position in ``[cursor, floor)`` is
    known to name a block that is resident or in flight, so repeated scans
    can skip it.  Evictions move the floor back (via :meth:`invalidate`,
    wired from the policy's ``on_evict``), because the victim's upcoming
    references become missing again.

    The floor is the memoization here, and measurement says it is the
    right amount: it ratchets forward with every completed walk, so
    repeated consultations rescan only the handful of references between
    the floor and the first actionable missing block.  Richer schemes
    (revision-stamped memos of the missing pairs in the examined span,
    patched on eviction) were prototyped and benchmarked; their replay
    bookkeeping cost more than the short scans they avoided on every
    measured workload, precisely because the floor already bounds the
    redundant work.  See docs/PERFORMANCE.md.
    """

    def __init__(self, sim: SimulatorLike) -> None:
        self.sim = sim
        self.floor = 0

    def invalidate(self, position: float) -> None:
        # ``position`` is ``index.never`` (or legacy float inf) for a block
        # with no upcoming reference; neither can be below the floor.
        if position < self.floor:
            self.floor = int(position)

    def missing_in(self, cursor: int, end: int) -> Iterator[Tuple[int, int]]:
        """Yield (position, block) for missing references in [cursor, end).

        Laziness matters: a block issued by the caller mid-iteration will be
        skipped at its later occurrences.  The caller is responsible for
        advancing :attr:`floor` afterwards (to the last position known
        missing-free).
        """
        sim = self.sim
        blocks = sim.blocks
        present = sim.cache.present
        lost = sim.lost_blocks
        end = min(end, len(blocks))
        start = max(cursor, self.floor)
        scan = sim.scan
        if scan is None:
            for position in range(start, end):
                block = blocks[position]
                if block not in present and block not in lost:
                    # Lost blocks (every copy on a dead spindle) are
                    # skipped: no fetch can ever serve them, so they are
                    # not "missing" in any actionable sense.
                    yield position, block
            return
        # Hybrid walk.  Missing-block scans are bimodal: either the consumer
        # (a per-disk batch budget) is satisfied within a few dozen
        # references of the floor — where a numpy probe costs more than the
        # handful of set lookups it replaces — or the scan must skate over
        # thousands of consecutive cached references, where scalar lookups
        # dominated whole-run profiles.  Serve the first ``_SCAN_PREFIX``
        # positions exactly like the scalar loop, then switch to vectorized
        # probes whose stride doubles per exhausted chunk.
        for position in range(start, min(end, start + _SCAN_PREFIX)):
            block = blocks[position]
            if block not in present and block not in lost:
                yield position, block
        # Vectorized tail: probe a chunk at once, re-validate each candidate
        # at yield time.  Fetches issued by the caller mid-iteration are
        # caught by the re-validation; an eviction can make a
        # *probed-present* block missing again, so the eviction counter is
        # checked after every yield and the remainder of the chunk is
        # re-probed when it moved.
        cache = sim.cache
        position = start + _SCAN_PREFIX
        chunk = _SCAN_CHUNK_MIN
        while position < end:
            stop = min(end, position + chunk)
            chunk = min(chunk * 2, _SCAN_CHUNK)
            stamp = cache.evictions
            resumed = False
            for candidate in scan.missing_candidates_iter(position, stop):
                block = blocks[candidate]
                if block in present or block in lost:
                    continue
                yield candidate, block
                if cache.evictions != stamp:
                    position = candidate + 1
                    resumed = True
                    break
            if not resumed:
                position = stop

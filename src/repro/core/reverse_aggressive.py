"""The reverse aggressive algorithm (Kimbrel & Karlin, FOCS '96).

Reverse aggressive exploits *global* knowledge: it constructs a prefetching
schedule for the **reversed** request sequence — greedily, per disk, with
batching, assuming a fixed fetch-time/compute-time ratio ``F`` — and then
transforms that schedule back to the forward direction by treating each
reverse fetch as a forward eviction and vice versa.  The reverse pass's
greed translates into two forward-direction virtues: evictions are chosen
so the evicted blocks can later be *refetched in parallel* (load balance),
and fetches land just in time, enabling the best possible late replacement
decisions.  The price is complexity and dependence on a good estimate of
``F`` — the paper's cscope3 result shows what happens when inter-reference
compute times are too bursty for any single estimate.

Concretely, the transform yields an ordered list of eviction choices, each
with a *release index* (one past the block's last use before it is fetched
back).  The forward executor is then aggressive-shaped: whenever a disk is
free it batch-fetches the first missing blocks on that disk, but takes its
eviction victims from the precomputed schedule instead of choosing greedily.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, cast

from repro.core.batching import batch_size_for
from repro.core.policy import MissingScanner, PrefetchPolicy, SimulatorLike, Victim
from repro.theory.model import run_aggressive_model

#: Fetch-time estimates (in reference-time units) swept by Appendix F.
APPENDIX_F_FETCH_TIMES = (4, 8, 16, 32, 64, 128)

#: Reverse-pass batch sizes swept by Appendix F.
APPENDIX_F_BATCH_SIZES = (4, 8, 16, 40, 80, 160)


class ReverseAggressive(PrefetchPolicy):
    """Offline near-optimal prefetching via the reversed-sequence pass."""

    def __init__(
        self,
        fetch_time_estimate: Optional[float] = None,
        reverse_batch_size: Optional[int] = None,
        forward_batch_size: Optional[int] = None,
        nominal_access_ms: float = 15.0,
    ) -> None:
        super().__init__()
        self.fetch_time_estimate = fetch_time_estimate
        self._reverse_batch_override = reverse_batch_size
        self._forward_batch_override = forward_batch_size
        self.nominal_access_ms = nominal_access_ms
        if fetch_time_estimate is None and reverse_batch_size is None:
            self.name = "reverse-aggressive"
        else:
            self.name = (
                f"reverse-aggressive(F={fetch_time_estimate},"
                f"rbatch={reverse_batch_size})"
            )
        self.batch_size = 0  # resolved against the array size in bind()
        self._scanner = cast(MissingScanner, None)  # set in bind()
        # The transformed schedule: eviction choices ordered by release.
        self._evictions: List[Tuple[int, int]] = []  # (release_index, block)
        self._eviction_pos = 0

    # -- schedule construction ---------------------------------------------------

    def bind(self, sim: SimulatorLike) -> None:
        super().bind(sim)
        self.batch_size = batch_size_for(sim.num_disks, self._forward_batch_override)
        self._scanner = MissingScanner(sim)
        estimate = self.fetch_time_estimate
        if estimate is None:
            estimate = self._auto_estimate(sim)
        reverse_batch = self._reverse_batch_override
        if reverse_batch is None:
            reverse_batch = self.batch_size
        self._build_schedule(sim, float(estimate), reverse_batch)

    def _auto_estimate(self, sim: SimulatorLike) -> float:
        """F ≈ expected disk access time / mean inter-reference compute time.

        The access-time guess is sequentiality-aware: mostly-sequential
        traces hit the drive's readahead cache and see 3–4 ms responses,
        while random traces pay full seeks (the paper's ~15 ms).  The paper
        instead grid-searches F per trace (Appendix F); this heuristic is
        the sweep-free default.
        """
        n = len(sim.compute_ms)
        mean_compute = (sum(sim.compute_ms) / n) if n else 1.0
        if mean_compute <= 0:
            mean_compute = 1e-3
        blocks = sim.blocks
        sequential = sum(
            1 for i in range(1, len(blocks)) if blocks[i] == blocks[i - 1] + 1
        )
        seq_frac = sequential / max(1, len(blocks) - 1)
        if seq_frac >= 0.7:
            access_ms = 3.5
        elif seq_frac <= 0.3:
            access_ms = self.nominal_access_ms
        else:
            access_ms = (3.5 + self.nominal_access_ms) / 2.0
        estimate = access_ms / mean_compute
        return min(256.0, max(1.0, estimate))

    def _build_schedule(
        self, sim: SimulatorLike, fetch_time: float, reverse_batch: int
    ) -> None:
        blocks = sim.blocks
        n = len(blocks)
        run = run_aggressive_model(
            blocks[::-1],
            cache_blocks=sim.cache.capacity,
            fetch_time=fetch_time,
            num_disks=sim.num_disks,
            disk_of=sim.disk_of,
            batch_size=reverse_batch,
        )
        # Reverse fetch of X targeting reverse position p == forward
        # eviction of X released at n - p (after X's last prior forward use).
        # Reverse fetches into *free buffers* (victim None) correspond to
        # blocks resident in the forward run's final cache: no forward fetch
        # pairs with them, so they produce no eviction.
        evictions = [
            (n - event.target_position, event.block)
            for event in reversed(run.events)
            if event.victim is not None
        ]
        evictions.sort(key=lambda pair: pair[0])
        self._evictions = evictions
        self._eviction_pos = 0

    # -- forward execution -----------------------------------------------------------

    def on_evict(self, block: int, next_use: float) -> None:
        self._scanner.invalidate(next_use)

    def before_reference(self, cursor: int, now: float) -> None:
        self._fill_free_disks(cursor)

    def on_disk_idle(self, disk: int, now: float) -> None:
        self._fill_free_disks(self.sim.cursor)

    def on_miss(self, cursor: int, now: float) -> None:
        block = self.sim.reference_block(cursor)
        victim = self._next_scheduled_victim(cursor, cursor)
        if victim is False:
            victim = self.choose_victim(cursor)
        if victim is False:
            return  # no buffer free; the engine retries after a completion
        self.issue(block, victim)

    def _free_disks(self) -> Set[int]:
        array = self.sim.array
        return {
            disk
            for disk in range(array.num_disks)
            if array.is_idle(disk) and array.queue_length(disk) == 0
        }

    def _fill_free_disks(self, cursor: int) -> None:
        sim = self.sim
        free = self._free_disks()
        if not free:
            return
        budgets = {disk: self.batch_size for disk in sorted(free)}
        new_floor: Optional[int] = None
        for position, block in self._scanner.missing_in(cursor, len(sim.blocks)):
            disk = sim.disk_of(block)
            budget = budgets.get(disk, 0)
            if budget == 0:
                if new_floor is None:
                    new_floor = position
                if all(b == 0 for b in budgets.values()):
                    break
                continue
            victim = self._next_scheduled_victim(cursor, position)
            if victim is False:
                if new_floor is None:
                    new_floor = position
                break
            self.issue(block, victim)
            budgets[disk] = budget - 1
        else:
            if new_floor is None:
                new_floor = len(sim.blocks)
        if new_floor is None:
            new_floor = len(sim.blocks)
        self._scanner.floor = max(self._scanner.floor, new_floor)

    def _next_scheduled_victim(self, cursor: int, fetch_position: int) -> Victim:
        """The next released eviction from the schedule, or None for a free
        buffer, or False when nothing may be evicted yet."""
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        protected = sim.protected_blocks()
        evictions = self._evictions
        position = self._eviction_pos
        while position < len(evictions):
            release, block = evictions[position]
            if block in protected:
                # A degraded hint stream can schedule the very block the
                # app is stalled on; wait rather than livelock.
                self._eviction_pos = position
                return False
            if release > cursor:
                # Entries are release-ordered: nothing is releasable yet.
                self._eviction_pos = position
                return False
            if block in sim.cache.resident:
                # next_use == index.never exceeds any real fetch position,
                # so never-again blocks stay evictable here.
                if sim.index.next_use(block, cursor) <= fetch_position:
                    self._eviction_pos = position
                    return False  # do-no-harm overrides the schedule
                self._eviction_pos = position + 1
                return block
            if sim.cache.is_in_flight(block):
                self._eviction_pos = position
                return False  # victim still arriving; wait for it
            position += 1  # released but already gone: stale, skip for good
        self._eviction_pos = position
        return False

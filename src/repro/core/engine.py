"""Event-driven trace simulator.

One wall clock drives two kinds of timeline:

* the **application**, which alternates compute (the traced inter-reference
  CPU times), driver work (0.5 ms per I/O issued, charged to the CPU), and
  stalls (waiting for a missing block to arrive); and
* **d disks**, each serving one request at a time from its scheduling queue.

Policies are consulted before every reference and at every disk completion;
they issue fetch/eviction pairs, the engine does everything else.  The
run's accounting identity — ``elapsed == compute + driver + stall`` — is
checked exactly at the end of every simulation, which makes the engine
self-auditing.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, cast

from repro.core.cache import BufferCache
from repro.core.hints import resolve_hint_view
from repro.core.nextref import EvictionHeap, NextRefIndex, ScanSupport
from repro.core.policy import PrefetchPolicy
from repro.core.results import SimulationResult
from repro.core.timeline import (
    EVICTION,
    FAILOVER,
    FAULT_INJECTED,
    FETCH_DONE,
    FETCH_ISSUED,
    FETCH_RETRY,
    STALL_END,
    STALL_START,
    Timeline,
)
from repro.disk.array import (
    OUTCOME_DEAD,
    OUTCOME_OK,
    DiskArray,
    Placement,
    StripedLayout,
)
from repro.disk.drive import DiskDrive
from repro.disk.geometry import HP97560, HP97560_ZONED, IBM0661, DiskGeometry
from repro.disk.scheduler import Request
from repro.disk.seek import IBM0661_SEEK
from repro.disk.simple import SimpleDrive
from repro.faults.schedule import FaultSchedule, UnrecoverableReadError
from repro.trace.trace import Trace

if TYPE_CHECKING:
    from repro.obs.observer import Observer
    from repro.perf.profiler import PhaseProfiler

_EVENT_DISK = 0  # completions processed before app steps at equal times
_EVENT_APP = 1
_EVENT_RETRY = 2  # a failed demand fetch resubmits after its backoff


@dataclass(frozen=True)
class SimConfig:
    """Simulation-wide knobs, defaulting to the paper's baseline setup."""

    cache_blocks: int = 1280
    driver_overhead_ms: float = 0.5
    discipline: str = "cscan"
    disk_model: str = "hp97560"  # "hp97560", "hp97560-zoned", "ibm0661", "simple"
    simple_access_ms: float = 15.0
    simple_sequential_ms: float = 2.0
    cpu_speedup: float = 1.0
    placement_seed: int = 0
    placement: str = "clustered"  # "clustered" (per-file groups) | "scatter"
    #: RAID-1 mode: disks form mirror pairs; each block lives on both
    #: spindles of its pair and reads dispatch to the less-loaded copy.
    mirrored: bool = False
    readahead: bool = True
    #: Record a per-run event timeline (fetches, completions, stalls) for
    #: post-hoc analysis via repro.core.timeline.
    record_timeline: bool = False
    #: Fault injection: transient read errors, fail-slow spindles, disk
    #: death (see repro.faults).  None (or a null schedule) leaves every
    #: code path and floating-point value of a healthy run untouched.
    faults: Optional[FaultSchedule] = None
    geometry: DiskGeometry = HP97560

    def with_(self, **changes: object) -> "SimConfig":
        return replace(self, **changes)


class Simulator:
    """Run one (trace, policy, array) combination to completion."""

    def __init__(
        self,
        trace: Trace,
        policy: PrefetchPolicy,
        num_disks: int,
        config: Optional[SimConfig] = None,
        hints: Optional[List[Optional[int]]] = None,
        profiler: Optional["PhaseProfiler"] = None,
        observer: Optional["Observer"] = None,
    ) -> None:
        self.config = config if config is not None else SimConfig()
        #: Optional :class:`repro.perf.PhaseProfiler`.  When attached, the
        #: policy is wrapped so its consultation time is accounted, and the
        #: engine brackets disk service and cache bookkeeping; when None the
        #: hot path carries no timing calls at all.
        self.profiler = profiler
        #: Optional :class:`repro.obs.Observer`.  When attached, the event
        #: handlers are shadowed with recording versions (event tracing,
        #: metrics, stall attribution — see docs/OBSERVABILITY.md); tracing
        #: is read-only, so results stay bit-identical.  When None the hot
        #: path carries no tracing calls at all.
        self.observer = observer
        self.trace = trace
        self.policy = policy
        self.num_disks = num_disks

        # The application consumes the *actual* reference stream; policies
        # see the (possibly degraded) hint view.  With perfect hints the two
        # are the same list.
        self.app_blocks: List[int] = trace.blocks
        if hints is None:
            self.blocks: List[int] = trace.blocks
        else:
            self.blocks = resolve_hint_view(trace.blocks, hints)
        speedup = self.config.cpu_speedup
        if speedup == 1.0:
            self.compute_ms = trace.compute_ms
        else:
            self.compute_ms = [c / speedup for c in trace.compute_ms]

        self._mirror_layout: Optional[StripedLayout] = None
        if self.config.mirrored:
            if num_disks < 2 or num_disks % 2:
                raise ValueError("mirroring needs an even number of disks")
            self._mirror_layout = StripedLayout(num_disks // 2)
        # Fault injection: a null schedule is dropped entirely so the
        # healthy path stays bit-for-bit identical to a fault-free run.
        faults = self.config.faults
        self._faults = (
            faults if faults is not None and not faults.is_null else None
        )
        #: Blocks whose every copy is gone (dead spindle, no live mirror).
        #: Scanners skip them; the app consumes their references as
        #: unreadable (partial-data mode) instead of stalling forever.
        self.lost_blocks: Set[int] = set()
        self._fetch_attempts: Dict[int, int] = {}
        self.retry_ms_total = 0.0
        self.failover_reads = 0
        self.failover_writes = 0
        self.abandoned_prefetches = 0
        self.lost_flushes = 0
        self.unreadable_references = 0

        self.index = NextRefIndex(self.blocks)
        self.cache = BufferCache(self.config.cache_blocks)
        self.eviction_heap = EvictionHeap(self.index, self.cache.resident)
        self.array = self._build_array()
        self._disk: Dict[int, int] = {}
        self._lbn: Dict[int, int] = {}
        self._place_blocks()
        #: Vectorized scan support (None without numpy).  Purely an
        #: accelerator: every consumer re-validates candidates against live
        #: cache state, so results are bit-identical with or without it.
        self.scan: Optional[ScanSupport] = ScanSupport.build(self.blocks)
        if self.scan is not None:
            self.cache.attach_present_mask(self.scan.mask)
            if not self.config.mirrored:
                # Static placement: per-position disk homes can be
                # precomputed.  Mirrored reads are load-dependent, so the
                # policies fall back to disk_of() there.
                self.scan.attach_disks(self._disk)

        self._events: List[Tuple[float, int, int, int]] = []
        self._event_seq = 0
        self.cursor = 0
        self.now = 0.0
        self._debt = 0.0
        self._waiting_block: Optional[int] = None
        self._retry_miss = False
        self._stall_start = 0.0
        self._done = False

        self._service_in_progress = [0.0] * num_disks
        self._dirty: Set[int] = set()
        self.write_count = 0
        self.flush_count = 0
        self._writes = trace.writes
        self.compute_total = 0.0
        self.driver_total = 0.0
        self.stall_total = 0.0
        self.elapsed = 0.0
        self.fetch_count = 0
        self._requests_started = 0
        #: Total simulator events dispatched by :meth:`run` (app steps, disk
        #: completions, retries) — the denominator for events/sec throughput.
        self.events_dispatched = 0
        self.timeline = Timeline() if self.config.record_timeline else None

        if profiler is not None:
            from repro.perf import ProfiledPolicy

            # ProfiledPolicy is a transparent delegating wrapper, not a
            # subclass; it honours the full PrefetchPolicy surface.
            self.policy = cast(PrefetchPolicy, ProfiledPolicy(policy, profiler))
            self._instrument(profiler)
        if observer is not None:
            # Attached after the profiler so tracing wraps the profiled
            # hooks; with both active the profiler's numbers include the
            # observer's recording cost (see docs/OBSERVABILITY.md).
            observer.attach(self)
        self.policy.bind(self)

    # -- construction helpers --------------------------------------------------

    def _instrument(self, profiler: "PhaseProfiler") -> None:
        """Shadow the hot-path methods with phase-bracketed versions.

        Instance-attribute shadowing keeps the class methods untouched, so
        a simulator without a profiler pays nothing — no flag checks, no
        indirection.  The wrappers only add timing; behaviour (and thus
        every :class:`SimulationResult` bit) is unchanged.
        """
        inner_start_disks = self._start_disks

        def timed_start_disks(now: float) -> None:
            profiler.start("disk")
            try:
                inner_start_disks(now)
            finally:
                profiler.stop()

        self._start_disks = timed_start_disks  # type: ignore[method-assign]

        inner_issue_fetch = self.issue_fetch

        def timed_issue_fetch(block: int, victim: Optional[int]) -> None:
            profiler.start("cache")
            try:
                inner_issue_fetch(block, victim)
            finally:
                profiler.stop()

        self.issue_fetch = timed_issue_fetch  # type: ignore[method-assign]

    def _build_array(self) -> DiskArray:
        config = self.config
        if config.disk_model == "hp97560":
            factory = lambda: DiskDrive(config.geometry, readahead=config.readahead)
        elif config.disk_model == "hp97560-zoned":
            factory = lambda: DiskDrive(HP97560_ZONED, readahead=config.readahead)
        elif config.disk_model == "ibm0661":
            factory = lambda: DiskDrive(
                IBM0661, seek_model=IBM0661_SEEK, readahead=config.readahead
            )
        elif config.disk_model == "simple":
            factory = lambda: SimpleDrive(
                access_ms=config.simple_access_ms,
                sequential_ms=config.simple_sequential_ms,
            )
        else:
            raise ValueError(f"unknown disk model {config.disk_model!r}")
        geometry = {
            "ibm0661": IBM0661,
            "hp97560-zoned": HP97560_ZONED,
        }.get(config.disk_model, config.geometry)
        return DiskArray(
            self.num_disks,
            drive_factory=factory,
            discipline=config.discipline,
            geometry=geometry,
            faults=self._faults,
        )

    def _place_blocks(self) -> None:
        effective_disks = (
            self.num_disks // 2 if self.config.mirrored else self.num_disks
        )
        total = self.array.geometry.total_blocks * effective_disks
        universe = set(self.index.unique_blocks()) | set(self.app_blocks)
        self._scatter_rng: Optional[random.Random] = None
        self._placement: Optional[Placement] = None
        self._files: Dict[int, Tuple[int, int]] = {}
        if self.config.placement == "scatter":
            # Ablation mode: every block lands at an independent random
            # address — no file clustering, no sequentiality for the drive
            # readahead or the CSCAN sweep to exploit.
            self._scatter_rng = random.Random(self.config.placement_seed)
        elif self.config.placement == "clustered":
            self._placement = Placement(total, seed=self.config.placement_seed)
            self._files = self.trace.files or {}
        else:
            raise ValueError(f"unknown placement {self.config.placement!r}")
        self._placement_total = total
        for block in sorted(universe, key=str):
            self._place_one(block)

    def _place_one(self, block: int) -> None:
        """Assign a (disk, lbn) home to ``block``.

        Called eagerly for every hinted/referenced block and lazily for
        anything else a policy chooses to fetch (heuristic prefetchers may
        speculate past the trace's footprint — any block is addressable).
        In mirrored mode the home is a *pair* index in [0, d/2); the other
        copy lives on spindle home + d/2 and disk_of picks between them.
        """
        layout = (
            self._mirror_layout if self.config.mirrored else self.array.layout
        )
        if self._scatter_rng is not None:
            global_block = self._scatter_rng.randrange(self._placement_total)
        else:
            assert self._placement is not None
            identity = self._files.get(block, block)
            global_block = self._placement.place(identity)
        self._disk[block] = layout.disk_of(global_block)
        self._lbn[block] = layout.lbn_of(global_block)

    # -- policy-facing API -------------------------------------------------------

    def protected_blocks(self) -> Set[int]:
        """Blocks that must not be evicted right now: the block the
        application is stalled on (or about to reference).  With perfect
        hints these are never eviction candidates anyway (their next use is
        the cursor itself); with degraded hints the lying next-use index
        could nominate them, which would livelock the run on an endless
        evict/refetch cycle."""
        protected: Set[int] = set()
        if self._waiting_block is not None:
            protected.add(self._waiting_block)
        if self.cursor < len(self.app_blocks):
            protected.add(self.app_blocks[self.cursor])
        return protected

    def reference_block(self, cursor: int) -> int:
        """The block the application will *actually* reference at ``cursor``
        (identical to ``blocks[cursor]`` unless hints are degraded)."""
        return self.app_blocks[cursor]

    def disk_of(self, block: int) -> int:
        if block not in self._disk:
            self._place_one(block)
        home = self._disk[block]
        if not self.config.mirrored:
            return home
        # RAID-1: the block's pair owns spindles (home, home + pairs);
        # dispatch to whichever is less loaded right now.  A dead spindle
        # is routed around; with both copies dead the request goes to the
        # home disk and fails fast into the partial-data path.
        mirror = home + self.num_disks // 2
        if self._faults is not None:
            home_dead = self._faults.is_dead(home, self.now)
            mirror_dead = self._faults.is_dead(mirror, self.now)
            if home_dead != mirror_dead:
                return mirror if home_dead else home
        array = self.array
        def load(disk: int) -> int:
            return array.queue_length(disk) + (0 if array.is_idle(disk) else 1)
        return home if load(home) <= load(mirror) else mirror

    def _live_twin(self, block: int, failed_disk: int, now: float) -> Optional[int]:
        """In mirrored mode, the other spindle of ``block``'s pair if it is
        still alive; None when there is no surviving copy to fail over to."""
        if not self.config.mirrored:
            return None
        assert self._faults is not None  # only reachable from fault handling
        pairs = self.num_disks // 2
        home = self._disk[block]
        twin = home + pairs if failed_disk == home else home
        if self._faults.is_dead(twin, now):
            return None
        return twin

    def lbn_of(self, block: int) -> int:
        if block not in self._lbn:
            self._place_one(block)
        return self._lbn[block]

    def is_write(self, cursor: int) -> bool:
        return self._writes is not None and self._writes[cursor]

    def _evict(self, victim: Optional[int]) -> None:
        """Shared eviction path: notify the policy and flush dirty data."""
        if victim is None:
            return
        victim_next_use = self.index.next_use(victim, self.cursor)
        self.policy.on_evict(victim, victim_next_use)
        if victim in self._dirty:
            # Write-behind: the dirty block leaves the cache now and its
            # contents drain to disk asynchronously (modelled as flushing
            # from a staging buffer, so the cache buffer frees immediately).
            self._dirty.discard(victim)
            self.array.submit(
                self.disk_of(victim), victim, self.lbn_of(victim),
                kind="write",
            )
            self.driver_total += self.config.driver_overhead_ms
            self._debt += self.config.driver_overhead_ms
            self.flush_count += 1

    def issue_fetch(self, block: int, victim: Optional[int]) -> None:
        """Fetch ``block`` (evicting ``victim``); charges driver overhead."""
        self.cache.begin_fetch(block, victim)
        self._evict(victim)
        disk = self.disk_of(block)
        self.array.submit(disk, block, self.lbn_of(block))
        self.driver_total += self.config.driver_overhead_ms
        self._debt += self.config.driver_overhead_ms
        self.fetch_count += 1
        if self.timeline is not None:
            self.timeline.record(self.now, FETCH_ISSUED, block, disk)
            if victim is not None:
                self.timeline.record(self.now, EVICTION, victim)

    def write_allocate(self, block: int, victim: Optional[int]) -> None:
        """Allocate a buffer for a whole-block write — no disk read."""
        self.cache.begin_fetch(block, victim)
        self._evict(victim)
        self.cache.complete_fetch(block)
        self.eviction_heap.push(block, self.cursor)

    # -- event plumbing ---------------------------------------------------------

    def _push(self, time: float, kind: int, payload: int = 0) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (time, kind, self._event_seq, payload))

    def _start_disks(self, now: float) -> None:
        for disk in range(self.num_disks):
            started = self.array.start_next(disk, now)
            if started is None:
                continue
            _request, completion, breakdown = started
            self._requests_started += 1
            self._service_in_progress[disk] = breakdown.total
            self._push(completion, _EVENT_DISK, disk)

    # -- event handlers -----------------------------------------------------------

    def _wake_app(self, now: float) -> None:
        """End the application's current stall: account the wait and
        schedule the app step that re-examines the reference."""
        if self.timeline is not None:
            waiting = self._waiting_block
            assert waiting is not None  # callers checked before waking
            self.timeline.record(max(now, self._stall_start), STALL_END, waiting)
        self._waiting_block = None
        self._retry_miss = False
        self.stall_total += max(0.0, now - self._stall_start)
        self._push(max(now, self._stall_start), _EVENT_APP)

    def _disk_complete(self, disk: int, now: float) -> None:
        request = self.array.complete(disk)
        if self._faults is not None:
            outcome = self.array.take_outcome(disk)
            if outcome is not OUTCOME_OK:
                self._fault_complete(disk, request, outcome, now)
                return
        if request.kind == "write":
            # A write-behind flush finished; nothing enters the cache, the
            # disk is simply free again.
            if not self._done:
                self.policy.on_disk_idle(disk, now)
            self._start_disks(now)
            if self._retry_miss and self._waiting_block is not None:
                self._wake_app(now)
            return
        self.cache.complete_fetch(request.block)
        if self._fetch_attempts:
            self._fetch_attempts.pop(request.block, None)
        self.eviction_heap.push(request.block, self.cursor)
        if self.timeline is not None:
            self.timeline.record(now, FETCH_DONE, request.block, disk)
        self.policy.on_fetch_complete(disk, self._service_in_progress[disk])
        if not self._done:
            self.policy.on_disk_idle(disk, now)
        self._start_disks(now)
        if self._waiting_block == request.block:
            self._wake_app(now)
        elif self._retry_miss and self._waiting_block is not None:
            # The app is parked on a miss it could not issue; a buffer may
            # have just freed up — wake it to retry.
            self._wake_app(now)

    # -- fault handling ---------------------------------------------------------

    def _fault_complete(
        self, disk: int, request: Request, outcome: str, now: float
    ) -> None:
        """A request finished with an injected fault: decide between
        failover (dead spindle, live mirror twin), retry with exponential
        backoff (failed demand fetch), abandonment (failed prefetch or
        flush), and partial-data mode (no copy of the block survives).
        """
        faults = self._faults
        assert faults is not None  # only reachable with fault injection on
        block = request.block
        service_ms = self._service_in_progress[disk]
        if self.timeline is not None:
            self.timeline.record(now, FAULT_INJECTED, block, disk)
        lost = False
        if request.kind == "write":
            if outcome is OUTCOME_DEAD:
                twin = self._live_twin(block, disk, now)
                if twin is not None:
                    self.failover_writes += 1
                    self.retry_ms_total += service_ms
                    self.array.submit(twin, block, self._lbn[block], kind="write")
                    if self.timeline is not None:
                        self.timeline.record(now, FAILOVER, block, twin)
                else:
                    self.lost_flushes += 1
            else:
                # Transient flush error: the buffer is long gone, so the
                # flush is simply dropped (a lost redundancy write).
                self.lost_flushes += 1
        elif outcome is OUTCOME_DEAD:
            twin = self._live_twin(block, disk, now)
            if twin is not None:
                self.failover_reads += 1
                self.retry_ms_total += service_ms
                self.array.submit(twin, block, self._lbn[block])
                if self.timeline is not None:
                    self.timeline.record(now, FAILOVER, block, twin)
            else:
                # No surviving copy anywhere: the block is gone.  Release
                # the buffer and let the app consume its references as
                # unreadable (partial data) instead of crashing the run.
                lost = True
                self.lost_blocks.add(block)
                self._abandon_fetch(block)
        elif self._waiting_block == block:
            # Failed *demand* fetch: retry with exponential backoff until
            # the budget is exhausted, then the data is unrecoverable.
            attempts = self._fetch_attempts.get(block, 0) + 1
            self._fetch_attempts[block] = attempts
            if attempts > faults.max_retries:
                raise UnrecoverableReadError(block, disk, attempts)
            backoff = faults.retry_backoff_ms * (2 ** (attempts - 1))
            self.retry_ms_total += service_ms + backoff
            self._push(now + backoff, _EVENT_RETRY, block)
        else:
            # Failed *prefetch*: abandon it — the bandwidth is already
            # wasted, and the block will surface later as a demand miss.
            self._abandon_fetch(block)
        if not self._done:
            self.policy.on_disk_idle(disk, now)
        self._start_disks(now)
        if self._waiting_block is not None:
            if lost and self._waiting_block == block:
                # The app was stalled on a block that no longer exists;
                # wake it into the partial-data path.
                self._wake_app(now)
            elif self._retry_miss:
                # A parked miss may now have a free buffer (an abandoned
                # prefetch released one) or a free disk.
                self._wake_app(now)

    def _abandon_fetch(self, block: int) -> None:
        """Release the in-flight reservation of a fetch that will never
        complete and re-expose the block to the policy's missing-set."""
        self.cache.abort_fetch(block)
        self._fetch_attempts.pop(block, None)
        self.abandoned_prefetches += 1
        if block not in self.lost_blocks:
            # Lost blocks are *not* re-exposed: scanners skip them and the
            # app consumes their references as unreadable.
            next_use = self.index.next_use(block, self.cursor)
            self.policy.on_evict(block, next_use)

    def _retry_fetch(self, block: int, now: float) -> None:
        """Backoff expired: resubmit the failed demand fetch.  The target
        disk is re-resolved, so a spindle that died during the backoff is
        routed around in mirrored mode."""
        if not self.cache.is_in_flight(block):
            return  # the fetch was aborted meanwhile (block became lost)
        disk = self.disk_of(block)
        self.array.submit(
            disk, block, self.lbn_of(block),
            attempt=self._fetch_attempts.get(block, 0),
        )
        if self.timeline is not None:
            self.timeline.record(now, FETCH_RETRY, block, disk)
        self._start_disks(now)

    def _app_step(self, now: float) -> None:
        if self._done:
            return
        if self._debt > 0.0:
            debt, self._debt = self._debt, 0.0
            self._push(now + debt, _EVENT_APP)
            return
        if self.cursor >= len(self.app_blocks):
            self._done = True
            self.elapsed = now
            return
        self.policy.before_reference(self.cursor, now)
        if self._debt > 0.0:
            self._start_disks(now)
            debt, self._debt = self._debt, 0.0
            self._push(now + debt, _EVENT_APP)
            return
        block = self.app_blocks[self.cursor]
        if block in self.cache:
            if self.is_write(self.cursor):
                self._dirty.add(block)
                self.write_count += 1
            compute = self.compute_ms[self.cursor]
            self.compute_total += compute
            self.policy.on_reference_served(self.cursor, compute)
            self.cursor += 1
            self.eviction_heap.push(block, self.cursor)
            self._push(now + compute, _EVENT_APP)
        elif block in self.lost_blocks and not self.is_write(self.cursor):
            # Partial-data mode: every copy of this block is on a dead
            # spindle.  The read cannot be served from anywhere; the run
            # records the unreadable reference and continues (writes still
            # allocate in cache and are handled above/below).
            self.unreadable_references += 1
            compute = self.compute_ms[self.cursor]
            self.compute_total += compute
            self.policy.on_reference_served(self.cursor, compute)
            self.cursor += 1
            self._push(now + compute, _EVENT_APP)
        elif self.is_write(self.cursor) and not self.cache.is_in_flight(block):
            # Whole-block write miss: allocate a buffer, no read needed.
            victim = self.policy.choose_victim(self.cursor)
            if victim is False:
                self._start_disks(now)
                debt, self._debt = self._debt, 0.0
                self._waiting_block = block
                self._retry_miss = True
                self._stall_start = now + debt
                if self.timeline is not None:
                    self.timeline.record(self._stall_start, STALL_START, block)
                return
            self.write_allocate(block, victim)
            self._start_disks(now)  # a dirty victim may have queued a flush
            if self._debt > 0.0:
                debt, self._debt = self._debt, 0.0
                self._push(now + debt, _EVENT_APP)
                return
            self._push(now, _EVENT_APP)  # re-enter: block now resident
        elif self.cache.is_in_flight(block):
            self._waiting_block = block
            self._stall_start = now
            if self.timeline is not None:
                self.timeline.record(now, STALL_START, block)
        else:
            self.policy.on_miss(self.cursor, now)
            if not self.cache.present_or_coming(block):
                if not self.cache.in_flight:
                    raise RuntimeError(
                        f"policy {self.policy.name!r} left block {block} "
                        f"unfetched at a miss (cursor {self.cursor})"
                    )
                # No buffer could be freed for the demand fetch (all of
                # them protected or riding in-flight prefetches).  Stall
                # until the next completion frees one, then retry the miss.
                self._start_disks(now)
                debt, self._debt = self._debt, 0.0
                self._waiting_block = block
                self._retry_miss = True
                self._stall_start = now + debt
                if self.timeline is not None:
                    self.timeline.record(self._stall_start, STALL_START, block)
                return
            self._start_disks(now)
            debt, self._debt = self._debt, 0.0
            self._waiting_block = block
            self._stall_start = now + debt
            if self.timeline is not None:
                self.timeline.record(self._stall_start, STALL_START, block)

    # -- main loop ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        if self.profiler is not None:
            return self._run_profiled()
        self._push(0.0, _EVENT_APP)
        events = self._events
        heappop = heapq.heappop
        dispatched = 0
        try:
            while events and not self._done:
                now, kind, _seq, payload = heappop(events)
                dispatched += 1
                self.now = now
                if kind == _EVENT_DISK:
                    self._disk_complete(payload, now)
                elif kind == _EVENT_RETRY:
                    self._retry_fetch(payload, now)
                else:
                    self._app_step(now)
        finally:
            self.events_dispatched += dispatched
        if not self._done:
            raise RuntimeError("simulation deadlocked before trace completion")
        return self._build_result()

    def _run_profiled(self) -> SimulationResult:
        """The event loop with phase bracketing — same dispatch order and
        state transitions as :meth:`run`, plus timing.  Each event is
        charged to ``dispatch``; the nested policy/disk/cache brackets
        carve their self time out of it."""
        profiler = self.profiler
        assert profiler is not None
        self._push(0.0, _EVENT_APP)
        events = self._events
        heappop = heapq.heappop
        dispatched = 0
        try:
            while events and not self._done:
                now, kind, _seq, payload = heappop(events)
                dispatched += 1
                self.now = now
                profiler.start("dispatch")
                try:
                    if kind == _EVENT_DISK:
                        self._disk_complete(payload, now)
                    elif kind == _EVENT_RETRY:
                        self._retry_fetch(payload, now)
                    else:
                        self._app_step(now)
                finally:
                    profiler.stop()
        finally:
            self.events_dispatched += dispatched
        if not self._done:
            raise RuntimeError("simulation deadlocked before trace completion")
        return self._build_result()

    def _build_result(self) -> SimulationResult:
        elapsed = self.elapsed
        busy = [min(b, elapsed) for b in self.array.busy_time]
        if elapsed > 0:
            utilization = sum(busy) / (self.num_disks * elapsed)
        else:
            utilization = 0.0
        started = max(1, self._requests_started)
        extras: Dict[str, float] = {}
        if self._writes is not None:
            extras["writes"] = self.write_count
            extras["flushes"] = self.flush_count
        if self._faults is not None:
            extras["transient_errors"] = self.array.transient_errors
            extras["dead_errors"] = self.array.dead_errors
            extras["slowed_requests"] = self.array.slowed_requests
            extras["abandoned_prefetches"] = self.abandoned_prefetches
            extras["failover_writes"] = self.failover_writes
            extras["lost_flushes"] = self.lost_flushes
            extras["lost_blocks"] = len(self.lost_blocks)
            extras["unreadable_references"] = self.unreadable_references
        result = SimulationResult(
            trace_name=self.trace.name,
            policy_name=self.policy.name,
            num_disks=self.num_disks,
            cache_blocks=self.config.cache_blocks,
            fetches=self.fetch_count,
            compute_ms=self.compute_total,
            driver_ms=self.driver_total,
            stall_ms=self.stall_total,
            elapsed_ms=elapsed,
            average_fetch_ms=self.array.service_time_total / started,
            disk_utilization=utilization,
            per_disk_busy_ms=busy,
            references=len(self.app_blocks),
            cache_hits=len(self.app_blocks) - self.fetch_count,
            retry_ms=self.retry_ms_total,
            failover_reads=self.failover_reads,
            faults_injected=self.array.faults_injected,
            extras=extras,
        )
        result.check_accounting(tolerance_ms=1e-6 * max(1.0, elapsed))
        return result

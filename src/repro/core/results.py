"""Simulation outputs: the paper's per-run measurement vector.

Every appendix table in the paper reports, per (trace, algorithm, disks):
fetches, driver time, stall time, elapsed time, average fetch time, and
average disk utilization.  :class:`SimulationResult` carries exactly those,
plus the compute-time component and enough detail for the figures.
"""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    trace_name: str
    policy_name: str
    num_disks: int
    cache_blocks: int
    fetches: int
    compute_ms: float
    driver_ms: float
    stall_ms: float
    elapsed_ms: float
    average_fetch_ms: float
    disk_utilization: float
    per_disk_busy_ms: List[float] = field(default_factory=list)
    cache_hits: int = 0
    references: int = 0
    #: Disk time burnt on failed attempts plus retry backoff waits (fault
    #: injection only; zero on healthy runs).  Not part of the elapsed-time
    #: identity — it is disk-side time, visible through stalls.
    retry_ms: float = 0.0
    #: Reads rerouted to a mirror twin after their home spindle died.
    failover_reads: int = 0
    #: Discrete fault events injected (transient errors + dead-disk fails).
    faults_injected: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        #: Per-cause stall decomposition (``repro.obs`` stall attribution;
        #: see docs/OBSERVABILITY.md).  Filled only on observed runs, and
        #: deliberately *not* a dataclass field: ``dataclasses.asdict``
        #: serializations — including the golden-digest suite — are
        #: identical whether or not a run was observed.
        self.stall_breakdown: Dict[str, float] = {}

    @property
    def degraded(self) -> bool:
        """True when data became unreachable (partial-data run): some
        references could not be served from any disk."""
        return bool(self.extras.get("unreadable_references", 0))

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ms / 1000.0

    @property
    def stall_s(self) -> float:
        return self.stall_ms / 1000.0

    @property
    def driver_s(self) -> float:
        return self.driver_ms / 1000.0

    @property
    def compute_s(self) -> float:
        return self.compute_ms / 1000.0

    def check_accounting(self, tolerance_ms: float = 1e-6) -> None:
        """Elapsed time must equal compute + driver + stall exactly."""
        residual = self.elapsed_ms - (
            self.compute_ms + self.driver_ms + self.stall_ms
        )
        if abs(residual) > tolerance_ms:
            raise AssertionError(
                f"accounting identity violated by {residual} ms "
                f"({self.trace_name}/{self.policy_name}/{self.num_disks})"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary.

        The ``*_s`` fields are rounded for display; the exact ``*_ms``
        fields are included alongside them so downstream JSON consumers
        can rely on the ``compute + driver + stall == elapsed`` identity
        at full float precision (rounding to 4 decimals breaks it).
        """
        d: Dict[str, object] = {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "disks": self.num_disks,
            "fetches": self.fetches,
            "driver_s": round(self.driver_s, 4),
            "stall_s": round(self.stall_s, 4),
            "elapsed_s": round(self.elapsed_s, 4),
            "compute_ms": self.compute_ms,
            "driver_ms": self.driver_ms,
            "stall_ms": self.stall_ms,
            "elapsed_ms": self.elapsed_ms,
            "avg_fetch_ms": round(self.average_fetch_ms, 3),
            "disk_util": round(self.disk_utilization, 3),
        }
        if self.stall_breakdown:
            d["stall_breakdown_ms"] = dict(self.stall_breakdown)
        if self.faults_injected or self.retry_ms or self.failover_reads:
            d["faults"] = self.faults_injected
            d["retry_ms"] = round(self.retry_ms, 3)
            d["failovers"] = self.failover_reads
        return d

    def __str__(self) -> str:
        text = (
            f"{self.trace_name}/{self.policy_name} disks={self.num_disks}: "
            f"elapsed={self.elapsed_s:.3f}s "
            f"(compute={self.compute_s:.3f} driver={self.driver_s:.3f} "
            f"stall={self.stall_s:.3f}) fetches={self.fetches} "
            f"avg_fetch={self.average_fetch_ms:.2f}ms "
            f"util={self.disk_utilization:.2f}"
        )
        if self.faults_injected or self.retry_ms or self.failover_reads:
            text += (
                f" faults={self.faults_injected} "
                f"retry={self.retry_ms / 1000.0:.3f}s "
                f"failovers={self.failover_reads}"
            )
            if self.degraded:
                text += " DEGRADED"
        return text

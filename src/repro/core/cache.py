"""Buffer cache with in-flight fetch reservation accounting.

Following the paper's model: the cache holds ``capacity`` block buffers.
Starting a fetch immediately consumes a buffer — the evicted block becomes
unavailable the moment the fetch is issued, and the incoming block becomes
available only when the fetch completes.  Resident blocks plus in-flight
reservations therefore never exceed the capacity.
"""

from __future__ import annotations

from typing import Optional, Set


class CacheFullError(RuntimeError):
    """Raised when a fetch is issued with no free buffer and no victim."""


class BufferCache:
    """Fixed-capacity block cache with explicit eviction."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.resident: Set[int] = set()
        self.in_flight: Set[int] = set()
        #: Maintained union of ``resident`` and ``in_flight`` — the
        #: missing-set complement.  Hot scan loops test membership on this
        #: set directly instead of paying a method call per reference.
        self.present: Set[int] = set()
        self.evictions = 0
        self.fills = 0
        #: Subclasses with resizable capacity may briefly exceed it.
        self.allow_overflow = False
        #: Optional dense 0/1 mirror of ``present`` for vectorized scans
        #: (see :class:`repro.core.nextref.ScanSupport`).  Blocks outside
        #: the mask's range (speculative prefetch targets past the trace
        #: footprint) are simply not mirrored — the vectorized probes only
        #: ever ask about traced positions.
        self.present_mask: Optional[bytearray] = None

    def attach_present_mask(self, mask: bytearray) -> None:
        """Keep ``mask[block]`` in lockstep with ``block in present``."""
        self.present_mask = mask
        for block in sorted(self.present):
            if 0 <= block < len(mask):
                mask[block] = 1

    def __contains__(self, block: int) -> bool:
        return block in self.resident

    def __len__(self) -> int:
        return len(self.resident)

    @property
    def free_buffers(self) -> int:
        return self.capacity - len(self.resident) - len(self.in_flight)

    @property
    def occupancy(self) -> int:
        """Buffers in use: resident blocks plus in-flight reservations."""
        return len(self.resident) + len(self.in_flight)

    def is_in_flight(self, block: int) -> bool:
        return block in self.in_flight

    def present_or_coming(self, block: int) -> bool:
        return block in self.present

    def begin_fetch(self, block: int, victim: Optional[int]) -> None:
        """Reserve a buffer for ``block``, evicting ``victim`` if given.

        ``victim is None`` requires a free buffer.  The victim becomes
        unavailable immediately.
        """
        if block in self.resident or block in self.in_flight:
            raise ValueError(f"block {block} already present or being fetched")
        if victim is None:
            if self.free_buffers <= 0:
                raise CacheFullError(
                    "no free buffer: a victim must be supplied when the "
                    "cache is full"
                )
        else:
            if victim not in self.resident:
                raise ValueError(f"victim {victim} is not resident")
            self.resident.remove(victim)
            self.present.remove(victim)
            self.evictions += 1
        self.in_flight.add(block)
        self.present.add(block)
        mask = self.present_mask
        if mask is not None:
            if victim is not None and 0 <= victim < len(mask):
                mask[victim] = 0
            if 0 <= block < len(mask):
                mask[block] = 1

    def abort_fetch(self, block: int) -> None:
        """The fetch of ``block`` will never complete (abandoned prefetch
        or dead disk); its buffer reservation frees immediately."""
        if block not in self.in_flight:
            raise ValueError(f"block {block} has no fetch in flight")
        self.in_flight.remove(block)
        self.present.remove(block)
        mask = self.present_mask
        if mask is not None and 0 <= block < len(mask):
            mask[block] = 0

    def complete_fetch(self, block: int) -> None:
        """The fetch of ``block`` finished; it is now referenceable."""
        if block not in self.in_flight:
            raise ValueError(f"block {block} has no fetch in flight")
        self.in_flight.remove(block)
        self.resident.add(block)
        self.fills += 1
        occupancy = len(self.resident) + len(self.in_flight)
        if occupancy > self.capacity and not self.allow_overflow:
            raise AssertionError("cache over capacity — accounting bug")

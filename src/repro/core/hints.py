"""Imperfect hints: the paper's future-work axis, made runnable.

The paper studies the fully-hinted single-process case and notes (section
6) that real systems must cope with *incomplete* and *inaccurate* hints.
This module degrades a trace's perfect hint stream and the engine runs the
algorithms against the degraded view:

* a **missing** hint hides an access from the policy entirely — the policy
  sees an innocuous re-reference instead, and the true access surfaces as
  a demand miss;
* a **wrong** hint names some other block — the policy may waste a
  prefetch (bandwidth + a cache buffer) on it, and the true access again
  costs a demand miss.

The degraded stream keeps 1:1 positional alignment with the real
reference stream, so every distance-based rule (horizons, forestall's
``i·F' > d_i``) operates exactly as it would in a hinting system whose
application lied at those positions.
"""

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.trace.trace import Trace


@dataclass(frozen=True)
class HintQuality:
    """How trustworthy the application's disclosures are.

    ``missing_fraction`` of references carry no hint; ``wrong_fraction``
    carry a hint naming a uniformly random *other* block of the trace.
    The two are disjoint (missing wins ties).
    """

    missing_fraction: float = 0.0
    wrong_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.missing_fraction + self.wrong_fraction
        if not 0.0 <= self.missing_fraction <= 1.0:
            raise ValueError("missing_fraction must be in [0, 1]")
        if not 0.0 <= self.wrong_fraction <= 1.0:
            raise ValueError("wrong_fraction must be in [0, 1]")
        if total > 1.0:
            raise ValueError("fractions must sum to at most 1")

    @property
    def perfect(self) -> bool:
        return self.missing_fraction == 0.0 and self.wrong_fraction == 0.0


def degrade_hints(trace: Trace, quality: HintQuality) -> List[Optional[int]]:
    """Produce a per-reference hint stream (``None`` = no hint given)."""
    if quality.perfect:
        return list(trace.blocks)
    rng = random.Random(quality.seed)
    universe = sorted(set(trace.blocks))
    # O(1) "some other block" lookup; universe.index per hint would make
    # degradation quadratic in the trace's footprint.
    index_of = {block: index for index, block in enumerate(universe)}
    hints: List[Optional[int]] = []
    for block in trace.blocks:
        roll = rng.random()
        if roll < quality.missing_fraction:
            hints.append(None)
        elif roll < quality.missing_fraction + quality.wrong_fraction:
            if len(universe) == 1:
                # A single-block universe has no *other* block to lie
                # about; a "wrong" hint would silently equal the truth.
                # Degrade to a missing hint instead.
                hints.append(None)
                continue
            wrong = rng.choice(universe)
            if wrong == block:
                wrong = universe[(index_of[block] + 1) % len(universe)]
            hints.append(wrong)
        else:
            hints.append(block)
    return hints


def resolve_hint_view(
    actual: List[int], hints: List[Optional[int]]
) -> List[int]:
    """The policy's view of the reference stream.

    Hints pass through; a missing hint is rendered as a re-reference of the
    most recent hinted block (an access the policy has no work to do for),
    which keeps positions aligned without inventing phantom blocks.
    """
    if len(hints) != len(actual):
        raise ValueError(
            f"hint stream length {len(hints)} != trace length {len(actual)}"
        )
    view: List[int] = []
    last_hinted: Optional[int] = None
    for position, hint in enumerate(hints):
        if hint is None:
            if last_hinted is None:
                # Leading unhinted accesses: borrow the first future hint so
                # the view still names a real block.
                future = next((h for h in hints[position:] if h is not None),
                              actual[position])
                view.append(future)
            else:
                view.append(last_hinted)
        else:
            last_hinted = hint
            view.append(hint)
    return view

"""Unhinted baseline policies: what a file system does *without* hints.

The paper's related-work section contrasts hint-based prefetching with the
classic heuristics — LRU replacement, sequential readahead, and access-
pattern prediction.  These policies use **no future knowledge at all**
(they never consult the next-reference index): replacement is
least-recently-used, and prefetching is driven by observed adjacency.
They exist as baselines, to quantify what the hints in the paper's four
algorithms are actually worth.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.policy import PrefetchPolicy, SimulatorLike, Victim


class _LRUMixin:
    """Recency tracking + LRU victim selection (no future knowledge)."""

    sim: SimulatorLike  # provided by the PrefetchPolicy side of the MRO

    def _lru_init(self) -> None:
        self._recency: "OrderedDict[int, None]" = OrderedDict()  # oldest first

    def _touch(self, block: int) -> None:
        self._recency.pop(block, None)
        self._recency[block] = None

    def _forget(self, block: int) -> None:
        self._recency.pop(block, None)

    def lru_victim(self) -> Victim:
        """Least-recently-used resident block, or None for a free buffer,
        or False when nothing may be evicted."""
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        protected = sim.protected_blocks()
        resident = sim.cache.resident
        for block in self._recency:
            if block in resident and block not in protected:
                return block
        # Recency list may lag (blocks fetched but never referenced);
        # fall back deterministically to the lowest unprotected block.
        fallback = min(
            (b for b in resident if b not in protected), default=None
        )
        if fallback is not None:
            return fallback
        return False

    # shared bookkeeping hooks -------------------------------------------------

    def on_reference_served(self, cursor: int, compute_ms: float) -> None:
        self._touch(self.sim.app_blocks[cursor])

    def on_evict(self, block: int, next_use: float) -> None:
        self._forget(block)


class LRUDemand(_LRUMixin, PrefetchPolicy):
    """Demand fetching with LRU replacement — the classic default."""

    name = "lru-demand"

    def bind(self, sim: SimulatorLike) -> None:
        super().bind(sim)
        self._lru_init()

    def on_miss(self, cursor: int, now: float) -> None:
        victim = self.lru_victim()
        if victim is False:
            return  # engine retries after a completion
        block = self.sim.reference_block(cursor)
        self.issue(block, victim)
        self._touch(block)


class SequentialReadahead(LRUDemand):
    """LRU demand plus N-block same-file readahead on every miss.

    This is the paper's "most common prefetching approach": it only helps
    applications that read large files sequentially, which is exactly the
    point of comparing it to the hint-based algorithms.
    """

    def __init__(self, depth: int = 8) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("readahead depth must be positive")
        self.depth = depth
        self.name = f"seq-readahead({depth})"

    def on_miss(self, cursor: int, now: float) -> None:
        super().on_miss(cursor, now)
        sim = self.sim
        block = sim.reference_block(cursor)
        # The file table and the missed block's home file are loop
        # invariants: resolve them once per miss instead of once per
        # readahead candidate (the window is walked on every single miss).
        files = getattr(sim.trace, "files", None)
        block_filed = bool(files) and block in files
        home = files[block][0] if block_filed else None
        present_or_coming = sim.cache.present_or_coming
        for successor in range(block + 1, block + 1 + self.depth):
            if block_filed and successor in files:
                if files[successor][0] != home:
                    break
            else:
                # No file metadata for the pair: accept any block the
                # simulator can place.
                try:
                    sim.disk_of(successor)
                except KeyError:
                    break
            if present_or_coming(successor):
                continue
            victim = self.lru_victim()
            if victim is False:
                break
            self.issue(successor, victim)


class StridePrefetcher(LRUDemand):
    """LRU demand plus stride-detected prefetching.

    Watches the deltas between consecutive *misses*; when the same stride
    repeats ``confirm`` times, prefetches ``depth`` blocks along it —
    the hardware-prefetcher idea applied to file blocks, and the only
    unhinted heuristic with a chance on xds-style strided scans.
    """

    def __init__(self, depth: int = 4, confirm: int = 2) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.confirm = confirm
        self._last_miss: Optional[int] = None
        self._stride = 0
        self._repeats = 0
        self.name = f"stride-prefetch({depth})"

    def on_miss(self, cursor: int, now: float) -> None:
        block = self.sim.reference_block(cursor)
        self._observe(block)
        super().on_miss(cursor, now)
        if self._repeats >= self.confirm and self._stride != 0:
            self._prefetch_along(block)

    def _observe(self, block: int) -> None:
        if self._last_miss is not None:
            stride = block - self._last_miss
            if stride == self._stride and stride != 0:
                self._repeats += 1
            else:
                self._stride = stride
                self._repeats = 1
        self._last_miss = block

    def _prefetch_along(self, block: int) -> None:
        for step in range(1, self.depth + 1):
            target = block + self._stride * step
            try:
                self.sim.disk_of(target)
            except KeyError:
                break
            if self.sim.cache.present_or_coming(target):
                continue
            victim = self.lru_victim()
            if victim is False:
                break
            self.issue(target, victim)

"""Core: the integrated prefetching/caching algorithms and the simulator.

The four algorithms from the paper plus the demand-fetching baseline are
registered in :data:`POLICIES`; :func:`make_policy` builds one by name with
optional keyword parameters.
"""

from repro.core.aggressive import Aggressive
from repro.core.batching import TABLE6_BATCH_SIZES, TABLE6_DEFAULT, batch_size_for
from repro.core.cache import BufferCache, CacheFullError
from repro.core.demand import DemandFetching
from repro.core.engine import SimConfig, Simulator
from repro.core.fixed_horizon import DEFAULT_HORIZON, FixedHorizon
from repro.core.hints import HintQuality, degrade_hints, resolve_hint_view
from repro.core.multiprocess import (
    CostBenefitAllocator,
    MultiProcessSimulator,
    ProcessResult,
    StaticAllocator,
)
from repro.core.forestall import Forestall
from repro.core.heuristics import LRUDemand, SequentialReadahead, StridePrefetcher
from repro.core.nextref import (
    HAVE_NUMPY,
    INFINITE,
    EvictionHeap,
    NextRefIndex,
    ReferenceNextRefIndex,
    ScanSupport,
)
from repro.core.policy import MissingScanner, PrefetchPolicy
from repro.core.results import SimulationResult
from repro.core.timeline import StallEpisode, Timeline
from repro.core.reverse_aggressive import ReverseAggressive
from typing import Callable, Dict, Union

#: Registry of policy constructors; values are the policy classes (typed as
#: callables so :func:`make_policy` can forward arbitrary keyword options).
POLICIES: Dict[str, Callable[..., PrefetchPolicy]] = {
    "demand": DemandFetching,
    "fixed-horizon": FixedHorizon,
    "aggressive": Aggressive,
    "reverse-aggressive": ReverseAggressive,
    "forestall": Forestall,
    # unhinted baselines (no future knowledge):
    "lru-demand": LRUDemand,
    "seq-readahead": SequentialReadahead,
    "stride-prefetch": StridePrefetcher,
}


def make_policy(
    name: Union[str, PrefetchPolicy], **kwargs: object
) -> PrefetchPolicy:
    """Instantiate a policy by registry name (or pass an instance through)."""
    if isinstance(name, PrefetchPolicy):
        return name
    try:
        policy_type = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(POLICIES)}"
        ) from None
    return policy_type(**kwargs)


__all__ = [
    "Aggressive",
    "BufferCache",
    "CacheFullError",
    "CostBenefitAllocator",
    "DEFAULT_HORIZON",
    "DemandFetching",
    "EvictionHeap",
    "FixedHorizon",
    "Forestall",
    "HAVE_NUMPY",
    "HintQuality",
    "INFINITE",
    "LRUDemand",
    "MissingScanner",
    "MultiProcessSimulator",
    "NextRefIndex",
    "POLICIES",
    "PrefetchPolicy",
    "ProcessResult",
    "ReferenceNextRefIndex",
    "ReverseAggressive",
    "ScanSupport",
    "SimConfig",
    "SequentialReadahead",
    "SimulationResult",
    "StaticAllocator",
    "StallEpisode",
    "StridePrefetcher",
    "Timeline",
    "Simulator",
    "TABLE6_BATCH_SIZES",
    "TABLE6_DEFAULT",
    "batch_size_for",
    "degrade_hints",
    "make_policy",
    "resolve_hint_view",
]

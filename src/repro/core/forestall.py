"""The forestall algorithm (section 5 — the paper's new contribution).

Forestall tries to combine fixed horizon's late, high-quality replacement
decisions with aggressive's refusal to let a disk idle while stalls loom.
For each disk it watches the upcoming missing blocks: with ``d_i`` the
distance (in references) from the cursor to the ``i``-th missing block on a
disk and ``F'`` an (over)estimate of the fetch-time/compute-time ratio,
processing *must* stall if ``i · F' > d_i`` for any ``i`` — there is not
enough time left to fetch ``i`` blocks serially before the application
needs them.  When that inequality fires, the disk starts prefetching
(optimal fetching + optimal replacement + do-no-harm, batched per Table 6);
until it fires, forestall sits back like fixed horizon and keeps its
replacement options open.

Practicalities from the paper, all implemented here:

* ``F`` is tracked per disk as the ratio of the sums of the most recent 100
  disk access times and the most recent 100 inter-reference compute times;
* ``F' = F`` when recent accesses are fast (< 5 ms — heavy sequentiality),
  ``F' = 4F`` otherwise, smoothing CSCAN reordering variance;
* a fixed-horizon backstop issues any missing block within ``H`` references;
* only missing blocks within ``2K`` references of the cursor are examined;
* a fixed ``F'`` may be supplied instead of the dynamic estimate
  (Appendix H studies exactly that).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Collection, Deque, Dict, Iterator, List, Optional, Set, Tuple, cast

from repro.core.batching import batch_size_for
from repro.core.fixed_horizon import DEFAULT_HORIZON
from repro.core.nextref import INFINITE
from repro.core.policy import PrefetchPolicy, SimulatorLike, Victim

#: Fixed F' values swept by Appendix H.
APPENDIX_H_FETCH_TIMES = (1, 2, 4, 8, 15, 30, 60)


class _MissingTracker:
    """Exact sorted index of upcoming *missing* references, one per block.

    Positions are discovered by a forward scan that never revisits covered
    ground.  The structure is kept exact by the policy: issuing a fetch
    removes the block's entry; an eviction re-inserts the victim at its
    next use.  Walks are therefore proportional to the number of truly
    missing blocks in the window, with no stale skipping.
    """

    def __init__(self, sim: SimulatorLike, window: int) -> None:
        self.sim = sim
        self.window = window
        self.positions: List[int] = []  # sorted
        self._position_of: Dict[int, int] = {}  # block -> its listed position
        self.scanned_to = 0

    def __len__(self) -> int:
        return len(self.positions)

    def extend(self, cursor: int) -> None:
        blocks = self.sim.blocks
        end = min(len(blocks), cursor + self.window)
        start = max(self.scanned_to, cursor)
        if start >= end:
            return
        present = self.sim.cache.present
        lost = self.sim.lost_blocks
        position_of = self._position_of
        append = self.positions.append
        for position in range(start, end):
            block = blocks[position]
            if (
                block not in position_of
                and block not in present
                and block not in lost  # unreachable: no fetch can help
            ):
                position_of[block] = position
                append(position)
        self.scanned_to = end

    def remove(self, block: int) -> None:
        """The block is being fetched; it is no longer missing."""
        position = self._position_of.pop(block, None)
        if position is None:
            return
        index = bisect.bisect_left(self.positions, position)
        if index < len(self.positions) and self.positions[index] == position:
            del self.positions[index]

    def on_evict(self, block: int, next_use: float) -> None:
        """The block was evicted; it is missing again from its next use."""
        if next_use is INFINITE or next_use >= self.scanned_to:
            return  # beyond the scanned window; a future extend finds it
        position = int(next_use)
        existing = self._position_of.get(block)
        if existing is not None:
            if existing <= position:
                return
            self.remove(block)
        self._position_of[block] = position
        bisect.insort(self.positions, position)

    def walk(self, cursor: int, snapshot: bool = False) -> Iterator[Tuple[int, int]]:
        """Yield (position, block) for missing references at/past the cursor.

        Always iterates a copy, so callers may mutate the missing set
        mid-walk (issuing a fetch removes its entry); ``snapshot`` is
        accepted for interface clarity but the behaviour is identical.
        """
        positions = self.positions
        start = bisect.bisect_left(positions, cursor)
        if start > 256:  # entries behind the app can never matter again
            for position in positions[:start]:
                block = self.sim.blocks[position]
                if self._position_of.get(block) == position:
                    del self._position_of[block]
            del positions[:start]
            start = 0
        blocks = self.sim.blocks
        for position in positions[start:]:
            block = blocks[position]
            yield position, block


class Forestall(PrefetchPolicy):
    """Prefetch exactly early enough to forestall the coming stall."""

    def __init__(
        self,
        batch_size: Optional[int] = None,
        horizon: int = DEFAULT_HORIZON,
        fixed_estimate: Optional[float] = None,
        history: int = 100,
        lookahead_caches: int = 2,
        fast_disk_threshold_ms: float = 5.0,
        overestimate_factor: float = 4.0,
    ) -> None:
        super().__init__()
        self._batch_override = batch_size
        self.horizon = horizon
        self.fixed_estimate = fixed_estimate
        if fixed_estimate is None:
            self.name = "forestall"
        else:
            self.name = f"forestall(F'={fixed_estimate})"
        self.history = history
        self.lookahead_caches = lookahead_caches
        self.fast_disk_threshold_ms = fast_disk_threshold_ms
        self.overestimate_factor = overestimate_factor
        self.batch_size = 0  # resolved against the array size in bind()
        self._tracker = cast(_MissingTracker, None)  # set in bind()
        #: Per-disk deque of recent service times (populated in bind()).
        self._access_history: List[Deque[float]] = []
        self._compute_history: Deque[float] = deque()
        self._next_check_cursor = 0
        self._pending_triggers: Set[int] = set()

    def bind(self, sim: SimulatorLike) -> None:
        super().bind(sim)
        self.batch_size = batch_size_for(sim.num_disks, self._batch_override)
        window = self.lookahead_caches * sim.cache.capacity
        self._tracker = _MissingTracker(sim, window)
        self._access_history = [
            deque([15.0], maxlen=self.history) for _ in range(sim.num_disks)
        ]
        mean_compute = 1.0
        if sim.compute_ms:
            head = sim.compute_ms[: min(100, len(sim.compute_ms))]
            mean_compute = max(1e-3, sum(head) / len(head))
        self._compute_history = deque([mean_compute], maxlen=self.history)
        self._next_check_cursor = 0

    # -- observation hooks ----------------------------------------------------------

    def on_fetch_complete(self, disk: int, service_ms: float) -> None:
        # Estimates drift slowly (100-sample window); the bounded re-check
        # interval (≤ 32 references) picks the drift up without a reset.
        self._access_history[disk].append(service_ms)

    def on_reference_served(self, cursor: int, compute_ms: float) -> None:
        if compute_ms > 0:
            self._compute_history.append(compute_ms)

    def on_evict(self, block: int, next_use: float) -> None:
        self._tracker.on_evict(block, next_use)
        self._next_check_cursor = 0  # the missing set grew; recheck

    def issue(self, block: int, victim: Optional[int]) -> None:
        self._tracker.remove(block)
        super().issue(block, victim)

    # -- estimation ---------------------------------------------------------------------

    def estimate(self, disk: int) -> float:
        """F' for ``disk``: recent fetch/compute ratio, overestimated when
        access times say the workload is not sequential."""
        if self.fixed_estimate is not None:
            return float(self.fixed_estimate)
        accesses = self._access_history[disk]
        mean_access = sum(accesses) / len(accesses)
        mean_compute = sum(self._compute_history) / len(self._compute_history)
        ratio = mean_access / max(1e-6, mean_compute)
        if mean_access < self.fast_disk_threshold_ms:
            return max(1.0, ratio)
        return max(1.0, ratio * self.overestimate_factor)

    # -- decision points -----------------------------------------------------------------

    def before_reference(self, cursor: int, now: float) -> None:
        self._check(cursor)

    def on_disk_idle(self, disk: int, now: float) -> None:
        cursor = self.sim.cursor
        if disk in self._pending_triggers and self._is_free(disk):
            self._check(cursor, force=True)
        else:
            self._check(cursor)

    def on_miss(self, cursor: int, now: float) -> None:
        super().on_miss(cursor, now)
        self._next_check_cursor = 0

    def _is_free(self, disk: int) -> bool:
        array = self.sim.array
        return array.is_idle(disk) and array.queue_length(disk) == 0

    def _free_disks(self) -> Set[int]:
        array = self.sim.array
        return {
            disk
            for disk in range(array.num_disks)
            if array.is_idle(disk) and array.queue_length(disk) == 0
        }

    def _check(self, cursor: int, force: bool = False) -> None:
        """Evaluate the stall-inevitability condition for every disk.

        Triggered-but-busy disks are remembered in ``_pending_triggers`` so
        their completion interrupt can start the batch without a re-walk.
        """
        if not force and cursor < self._next_check_cursor:
            return
        tracker = self._tracker
        tracker.extend(cursor)
        num_disks = self.sim.num_disks
        estimates = [self.estimate(disk) for disk in range(num_disks)]
        counts: Dict[int, int] = {}
        triggered: Set[int] = set()
        backstopped: Set[int] = set()
        min_slack: Optional[float] = None
        first_distance: Optional[int] = None
        sim = self.sim
        for position, block in tracker.walk(cursor):
            distance = position - cursor
            if first_distance is None:
                first_distance = distance
            disk = sim.disk_of(block)
            count = counts.get(disk, 0) + 1
            counts[disk] = count
            if disk in triggered:
                continue
            if distance <= self.horizon:
                # Fixed-horizon backstop: this block must be issued, but a
                # backstop alone does not justify a deep batch.
                backstopped.add(disk)
            if count * estimates[disk] > distance:
                triggered.add(disk)
            else:
                slack = distance - count * estimates[disk]
                if min_slack is None or slack < min_slack:
                    min_slack = slack
            if len(triggered) == num_disks:
                break
        self._pending_triggers = triggered | backstopped
        free = self._free_disks()
        ready = triggered & free
        ready_backstop = (backstopped - triggered) & free
        if ready or ready_backstop:
            self._issue_batches(cursor, ready, ready_backstop)
            self._next_check_cursor = 0
            return
        # Nothing fired (or fired only on busy disks): the earliest a new
        # trigger can fire is when the cursor eats through the least slack.
        candidates = [32.0]
        if min_slack is not None:
            candidates.append(min_slack)
        if first_distance is not None and first_distance > self.horizon:
            candidates.append(float(first_distance - self.horizon))
        advance = max(1, int(min(candidates)))
        self._next_check_cursor = cursor + advance

    def _issue_batches(
        self,
        cursor: int,
        disks: Collection[int],
        backstop_disks: Collection[int] = (),
    ) -> None:
        """Aggressive-style batch fill restricted to the triggered disks.

        ``backstop_disks`` fired only the fixed-horizon rule: they issue
        just the missing blocks within the horizon (fixed horizon's own
        behaviour), not a deep batch.
        """
        sim = self.sim
        budgets = {disk: self.batch_size for disk in sorted(disks)}
        horizon_end = cursor + self.horizon
        tracker = self._tracker
        for position, block in tracker.walk(cursor, snapshot=True):
            disk = sim.disk_of(block)
            budget = budgets.get(disk)
            if budget is None:
                if disk in backstop_disks and position <= horizon_end:
                    victim = self._victim_for(cursor, position)
                    if victim is False:
                        break
                    self.issue(block, victim)
                continue
            if budget == 0:
                if all(b == 0 for b in budgets.values()) and not backstop_disks:
                    break
                continue
            victim = self._victim_for(cursor, position)
            if victim is False:
                break
            self.issue(block, victim)
            budgets[disk] = budget - 1

    def _victim_for(self, cursor: int, fetch_position: int) -> Victim:
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        victim = sim.eviction_heap.best_victim(
            cursor, exclude=sim.protected_blocks()
        )
        if victim is None:
            return False
        next_use = sim.index.next_use(victim, cursor)
        if next_use is not INFINITE and next_use <= fetch_position:
            return False
        return victim

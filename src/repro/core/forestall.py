"""The forestall algorithm (section 5 — the paper's new contribution).

Forestall tries to combine fixed horizon's late, high-quality replacement
decisions with aggressive's refusal to let a disk idle while stalls loom.
For each disk it watches the upcoming missing blocks: with ``d_i`` the
distance (in references) from the cursor to the ``i``-th missing block on a
disk and ``F'`` an (over)estimate of the fetch-time/compute-time ratio,
processing *must* stall if ``i · F' > d_i`` for any ``i`` — there is not
enough time left to fetch ``i`` blocks serially before the application
needs them.  When that inequality fires, the disk starts prefetching
(optimal fetching + optimal replacement + do-no-harm, batched per Table 6);
until it fires, forestall sits back like fixed horizon and keeps its
replacement options open.

Practicalities from the paper, all implemented here:

* ``F`` is tracked per disk as the ratio of the sums of the most recent 100
  disk access times and the most recent 100 inter-reference compute times;
* ``F' = F`` when recent accesses are fast (< 5 ms — heavy sequentiality),
  ``F' = 4F`` otherwise, smoothing CSCAN reordering variance;
* a fixed-horizon backstop issues any missing block within ``H`` references;
* only missing blocks within ``2K`` references of the cursor are examined;
* a fixed ``F'`` may be supplied instead of the dynamic estimate
  (Appendix H studies exactly that).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import (
    Any,
    Collection,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    cast,
)

from repro.core.batching import batch_size_for
from repro.core.fixed_horizon import DEFAULT_HORIZON
from repro.core.nextref import _np
from repro.core.policy import PrefetchPolicy, SimulatorLike, Victim

#: Pending-window size below which the scalar survey/walk beats the
#: vectorized one (fixed numpy call overhead vs ~0.2 us per scalar entry).
_VECTOR_MIN_ENTRIES = 128

#: Fixed F' values swept by Appendix H.
APPENDIX_H_FETCH_TIMES = (1, 2, 4, 8, 15, 30, 60)


class _MissingTracker:
    """Exact sorted index of upcoming *missing* references, one per block.

    Positions are discovered by a forward scan that never revisits covered
    ground.  The structure is kept exact by the policy: issuing a fetch
    removes the block's entry; an eviction re-inserts the victim at its
    next use.  Walks are therefore proportional to the number of truly
    missing blocks in the window, with no stale skipping.
    """

    def __init__(self, sim: SimulatorLike, window: int) -> None:
        self.sim = sim
        self.window = window
        self.positions: List[int] = []  # sorted
        self._position_of: Dict[int, int] = {}  # block -> its listed position
        self.scanned_to = 0
        # Persistent int64 mirror of ``positions`` (plus each entry's disk),
        # kept in lockstep through every mutation so the vectorized survey
        # and batch paths never pay a per-call list->array conversion.
        # Mutations are C-level memmoves on a window of ~10^3 entries,
        # far cheaper than the conversions they replace.
        scan = sim.scan
        self._mirror = (
            _np is not None and scan is not None and scan.disk_by_pos is not None
        )
        if self._mirror:
            self._disk_by_pos = scan.disk_by_pos  # type: ignore[union-attr]
            self._pos_arr = _np.empty(1024, dtype=_np.int64)
            self._disk_arr = _np.empty(1024, dtype=_np.int64)
            # Per-disk position subsequences (same entries, split by disk):
            # within one disk the i-th entry's rank is simply i+1, which
            # lets the survey skip rank bookkeeping entirely.
            num_disks = sim.num_disks
            self._disk_pos = [
                _np.empty(256, dtype=_np.int64) for _ in range(num_disks)
            ]
            self._disk_len = [0] * num_disks

    def _grow(self, needed: int, valid: int) -> None:
        capacity = self._pos_arr.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        pos_arr = _np.empty(capacity, dtype=_np.int64)
        disk_arr = _np.empty(capacity, dtype=_np.int64)
        pos_arr[:valid] = self._pos_arr[:valid]
        disk_arr[:valid] = self._disk_arr[:valid]
        self._pos_arr = pos_arr
        self._disk_arr = disk_arr

    def _disk_grow(self, disk: int, needed: int) -> None:
        buf = self._disk_pos[disk]
        capacity = buf.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = _np.empty(capacity, dtype=_np.int64)
        valid = self._disk_len[disk]
        grown[:valid] = buf[:valid]
        self._disk_pos[disk] = grown

    def __len__(self) -> int:
        return len(self.positions)

    def extend(self, cursor: int) -> None:
        blocks = self.sim.blocks
        end = min(len(blocks), cursor + self.window)
        start = max(self.scanned_to, cursor)
        if start >= end:
            return
        present = self.sim.cache.present
        lost = self.sim.lost_blocks
        position_of = self._position_of
        append = self.positions.append
        before = len(self.positions)
        scan = self.sim.scan
        if scan is not None:
            # One vectorized probe for the whole span: nothing mutates the
            # cache during extend, so the mask's answer is exact; only the
            # first-occurrence and lost filters remain per candidate.
            for position in scan.missing_candidates(start, end):
                block = blocks[position]
                if block not in position_of and block not in lost:
                    position_of[block] = position
                    append(position)
        else:
            for position in range(start, end):
                block = blocks[position]
                if (
                    block not in position_of
                    and block not in present
                    and block not in lost  # unreachable: no fetch can help
                ):
                    position_of[block] = position
                    append(position)
        self.scanned_to = end
        after = len(self.positions)
        if self._mirror and after > before:
            self._grow(after, before)
            added = _np.asarray(self.positions[before:], dtype=_np.int64)
            added_disks = self._disk_by_pos[added]
            self._pos_arr[before:after] = added
            self._disk_arr[before:after] = added_disks
            # Appended positions all lie past every existing entry (the
            # forward scan never revisits), so each disk's share lands at
            # the end of its subsequence too.
            for disk in range(len(self._disk_pos)):
                vals = added[added_disks == disk]
                count = vals.shape[0]
                if count:
                    length = self._disk_len[disk]
                    self._disk_grow(disk, length + count)
                    self._disk_pos[disk][length : length + count] = vals
                    self._disk_len[disk] = length + count

    def remove(self, block: int) -> None:
        """The block is being fetched; it is no longer missing."""
        position = self._position_of.pop(block, None)
        if position is None:
            return
        index = bisect.bisect_left(self.positions, position)
        if index < len(self.positions) and self.positions[index] == position:
            del self.positions[index]
            if self._mirror:
                count = len(self.positions)  # post-delete
                self._pos_arr[index:count] = self._pos_arr[index + 1 : count + 1]
                self._disk_arr[index:count] = self._disk_arr[index + 1 : count + 1]
                disk = int(self._disk_by_pos[position])
                buf = self._disk_pos[disk]
                length = self._disk_len[disk]
                at = int(_np.searchsorted(buf[:length], position))
                buf[at : length - 1] = buf[at + 1 : length]
                self._disk_len[disk] = length - 1

    def on_evict(self, block: int, next_use: float) -> None:
        """The block was evicted; it is missing again from its next use."""
        # "Never referenced again" — index.never or a legacy float inf —
        # always compares >= scanned_to, so one comparison covers both.
        if next_use >= self.scanned_to:
            return  # beyond the scanned window; a future extend finds it
        position = int(next_use)
        existing = self._position_of.get(block)
        if existing is not None:
            if existing <= position:
                return
            self.remove(block)
        self._position_of[block] = position
        # Positions are unique (one block per reference slot), so left and
        # right insertion points coincide; reuse the index for the mirror.
        index = bisect.bisect_left(self.positions, position)
        self.positions.insert(index, position)
        if self._mirror:
            count = len(self.positions)  # post-insert
            self._grow(count, count - 1)
            self._pos_arr[index + 1 : count] = self._pos_arr[index : count - 1]
            self._disk_arr[index + 1 : count] = self._disk_arr[index : count - 1]
            self._pos_arr[index] = position
            disk = int(self._disk_by_pos[position])
            self._disk_arr[index] = disk
            length = self._disk_len[disk]
            self._disk_grow(disk, length + 1)
            buf = self._disk_pos[disk]  # _disk_grow may have replaced it
            at = int(_np.searchsorted(buf[:length], position))
            buf[at + 1 : length + 1] = buf[at:length]
            buf[at] = position
            self._disk_len[disk] = length + 1

    def _prune_behind(self, cursor: int) -> int:
        """Index of the first entry at/past ``cursor``, compacting the list
        when many entries have fallen behind the application (they can
        never matter again).  Shared by the scalar and vectorized walks so
        both mutate ``_position_of`` identically."""
        positions = self.positions
        start = bisect.bisect_left(positions, cursor)
        if start > 256:
            for position in positions[:start]:
                block = self.sim.blocks[position]
                if self._position_of.get(block) == position:
                    del self._position_of[block]
            del positions[:start]
            if self._mirror:
                count = len(positions)  # post-compaction
                self._pos_arr[:count] = self._pos_arr[start : start + count]
                self._disk_arr[:count] = self._disk_arr[start : start + count]
                for disk, buf in enumerate(self._disk_pos):
                    length = self._disk_len[disk]
                    behind = int(_np.searchsorted(buf[:length], cursor))
                    if behind:
                        buf[: length - behind] = buf[behind:length]
                        self._disk_len[disk] = length - behind
            start = 0
        return start

    def pending_window(self, cursor: int) -> Tuple[List[int], int]:
        """The sorted missing positions and the index of the first one
        at/past ``cursor`` (after the same pruning as :meth:`walk`)."""
        start = self._prune_behind(cursor)
        return self.positions, start

    def pending_arrays(self, cursor: int) -> Optional[Tuple[Any, Any]]:
        """O(1) int64 views (positions, disks) of the entries at/past
        ``cursor``, or ``None`` when the mirror is unavailable (no numpy or
        no per-position disk map).  The views alias the live mirror: they
        are invalidated by the next tracker mutation, so callers must
        materialize anything they need across an issue."""
        if not self._mirror:
            return None
        start = self._prune_behind(cursor)
        count = len(self.positions)
        return self._pos_arr[start:count], self._disk_arr[start:count]

    def disk_view(self, disk: int, cursor: int) -> Any:
        """O(log n) int64 view of one disk's missing positions at/past
        ``cursor`` (sorted; rank of the i-th entry on its disk is i+1).
        Same aliasing caveat as :meth:`pending_arrays`.  Only meaningful
        when :meth:`pending_arrays` returned a view (mirror available)."""
        buf = self._disk_pos[disk]
        length = self._disk_len[disk]
        # Entries behind the cursor are transient (a missing reference is
        # served — and removed — before the cursor passes it), so the
        # common case is start == 0; one element probe dodges the search.
        if not length or buf[0] >= cursor:
            return buf[:length]
        start = int(buf[:length].searchsorted(cursor))
        return buf[start:length]

    def walk(self, cursor: int, snapshot: bool = False) -> Iterator[Tuple[int, int]]:
        """Yield (position, block) for missing references at/past the cursor.

        Always iterates a copy, so callers may mutate the missing set
        mid-walk (issuing a fetch removes its entry); ``snapshot`` is
        accepted for interface clarity but the behaviour is identical.
        """
        start = self._prune_behind(cursor)
        blocks = self.sim.blocks
        for position in self.positions[start:]:
            block = blocks[position]
            yield position, block


class Forestall(PrefetchPolicy):
    """Prefetch exactly early enough to forestall the coming stall."""

    def __init__(
        self,
        batch_size: Optional[int] = None,
        horizon: int = DEFAULT_HORIZON,
        fixed_estimate: Optional[float] = None,
        history: int = 100,
        lookahead_caches: int = 2,
        fast_disk_threshold_ms: float = 5.0,
        overestimate_factor: float = 4.0,
    ) -> None:
        super().__init__()
        self._batch_override = batch_size
        self.horizon = horizon
        self.fixed_estimate = fixed_estimate
        if fixed_estimate is None:
            self.name = "forestall"
        else:
            self.name = f"forestall(F'={fixed_estimate})"
        self.history = history
        self.lookahead_caches = lookahead_caches
        self.fast_disk_threshold_ms = fast_disk_threshold_ms
        self.overestimate_factor = overestimate_factor
        self.batch_size = 0  # resolved against the array size in bind()
        self._tracker = cast(_MissingTracker, None)  # set in bind()
        #: Per-disk deque of recent service times (populated in bind()).
        self._access_history: List[Deque[float]] = []
        self._mean_access: List[Optional[float]] = []
        self._compute_history: Deque[float] = deque()
        self._next_check_cursor = 0
        self._pending_triggers: Set[int] = set()
        # Reusable survey scratch (numpy only): ranks 1..cap, grown on
        # demand to the largest single-disk pending window seen.
        self._rank1_buf = _np.arange(1, 1025, dtype=_np.int64) if _np is not None else None

    def bind(self, sim: SimulatorLike) -> None:
        super().bind(sim)
        self.batch_size = batch_size_for(sim.num_disks, self._batch_override)
        window = self.lookahead_caches * sim.cache.capacity
        self._tracker = _MissingTracker(sim, window)
        self._access_history = [
            deque([15.0], maxlen=self.history) for _ in range(sim.num_disks)
        ]
        # Cached per-disk access-time means: the history only changes on a
        # fetch completion, which clears the slot; the cached value is the
        # very float ``sum(...)/len(...)`` produced, so reuse is exact.
        self._mean_access = [None] * sim.num_disks
        mean_compute = 1.0
        if sim.compute_ms:
            head = sim.compute_ms[: min(100, len(sim.compute_ms))]
            mean_compute = max(1e-3, sum(head) / len(head))
        self._compute_history = deque([mean_compute], maxlen=self.history)
        self._next_check_cursor = 0

    # -- observation hooks ----------------------------------------------------------

    def on_fetch_complete(self, disk: int, service_ms: float) -> None:
        # Estimates drift slowly (100-sample window); the bounded re-check
        # interval (≤ 32 references) picks the drift up without a reset.
        self._access_history[disk].append(service_ms)
        self._mean_access[disk] = None  # recompute at the next survey

    def on_reference_served(self, cursor: int, compute_ms: float) -> None:
        if compute_ms > 0:
            self._compute_history.append(compute_ms)

    def on_evict(self, block: int, next_use: float) -> None:
        self._tracker.on_evict(block, next_use)
        self._next_check_cursor = 0  # the missing set grew; recheck

    def issue(self, block: int, victim: Optional[int]) -> None:
        self._tracker.remove(block)
        super().issue(block, victim)

    # -- estimation ---------------------------------------------------------------------

    def estimate(self, disk: int) -> float:
        """F' for ``disk``: recent fetch/compute ratio, overestimated when
        access times say the workload is not sequential."""
        if self.fixed_estimate is not None:
            return float(self.fixed_estimate)
        accesses = self._access_history[disk]
        mean_access = sum(accesses) / len(accesses)
        mean_compute = sum(self._compute_history) / len(self._compute_history)
        ratio = mean_access / max(1e-6, mean_compute)
        if mean_access < self.fast_disk_threshold_ms:
            return max(1.0, ratio)
        return max(1.0, ratio * self.overestimate_factor)

    def _estimates(self) -> List[float]:
        """Per-disk F' with the compute-history mean hoisted out of the
        per-disk loop; arithmetic is term-for-term :meth:`estimate`."""
        if self.fixed_estimate is not None:
            return [float(self.fixed_estimate)] * self.sim.num_disks
        mean_compute = sum(self._compute_history) / len(self._compute_history)
        estimates = []
        means = self._mean_access
        for disk, accesses in enumerate(self._access_history):
            mean_access = means[disk]
            if mean_access is None:
                mean_access = sum(accesses) / len(accesses)
                means[disk] = mean_access
            ratio = mean_access / max(1e-6, mean_compute)
            if mean_access < self.fast_disk_threshold_ms:
                estimates.append(max(1.0, ratio))
            else:
                estimates.append(max(1.0, ratio * self.overestimate_factor))
        return estimates

    # -- decision points -----------------------------------------------------------------

    def before_reference(self, cursor: int, now: float) -> None:
        self._check(cursor)

    def on_disk_idle(self, disk: int, now: float) -> None:
        cursor = self.sim.cursor
        if disk in self._pending_triggers and self._is_free(disk):
            self._check(cursor, force=True)
        else:
            self._check(cursor)

    def on_miss(self, cursor: int, now: float) -> None:
        super().on_miss(cursor, now)
        self._next_check_cursor = 0

    def _is_free(self, disk: int) -> bool:
        array = self.sim.array
        return array.is_idle(disk) and array.queue_length(disk) == 0

    def _check(self, cursor: int, force: bool = False) -> None:
        """Evaluate the stall-inevitability condition for every disk.

        Triggered-but-busy disks are remembered in ``_pending_triggers`` so
        their completion interrupt can start the batch without a re-walk.
        """
        if not force and cursor < self._next_check_cursor:
            return
        tracker = self._tracker
        tracker.extend(cursor)
        estimates = self._estimates()
        arrays = tracker.pending_arrays(cursor)
        if arrays is None:
            survey = self._survey_scalar(cursor, estimates)
        elif arrays[0].shape[0] >= _VECTOR_MIN_ENTRIES:
            survey = self._survey_vector(cursor, estimates, arrays)
        else:
            survey = self._survey_scalar(cursor, estimates, arrays)
            arrays = None  # below the batch-cut threshold; walk instead
        triggered, backstopped, min_slack, first_distance = survey
        self._pending_triggers = triggered | backstopped
        # Probe idleness only for disks the survey named (usually none or
        # one) rather than materializing the whole free set every check.
        ready = {disk for disk in triggered if self._is_free(disk)}
        ready_backstop = {
            disk for disk in backstopped - triggered if self._is_free(disk)
        }
        if ready or ready_backstop:
            self._issue_batches(cursor, ready, ready_backstop, arrays)
            self._next_check_cursor = 0
            return
        # Nothing fired (or fired only on busy disks): the earliest a new
        # trigger can fire is when the cursor eats through the least slack.
        candidates = [32.0]
        if min_slack is not None:
            candidates.append(min_slack)
        if first_distance is not None and first_distance > self.horizon:
            candidates.append(float(first_distance - self.horizon))
        advance = max(1, int(min(candidates)))
        self._next_check_cursor = cursor + advance

    def _survey_scalar(
        self,
        cursor: int,
        estimates: List[float],
        arrays: Optional[Tuple[Any, Any]] = None,
    ) -> Tuple[Set[int], Set[int], Optional[float], Optional[int]]:
        """Per-entry stall-inevitability walk (reference implementation).

        With ``arrays`` (the tracker's pending mirror view) the walk reads
        position/disk pairs straight from the mirror — ``disk_by_pos[p]``
        equals ``disk_of(blocks[p])`` by construction, so the loop is
        unchanged, just without a dict lookup per entry.
        """
        sim = self.sim
        num_disks = len(estimates)
        counts: Dict[int, int] = {}
        triggered: Set[int] = set()
        backstopped: Set[int] = set()
        min_slack: Optional[float] = None
        first_distance: Optional[int] = None
        if arrays is not None:
            entries: Iterable[Tuple[int, int]] = zip(
                arrays[0].tolist(), arrays[1].tolist()
            )
        else:
            entries = (
                (position, sim.disk_of(block))
                for position, block in self._tracker.walk(cursor)
            )
        for position, disk in entries:
            distance = position - cursor
            if first_distance is None:
                first_distance = distance
            count = counts.get(disk, 0) + 1
            counts[disk] = count
            if disk in triggered:
                continue
            if distance <= self.horizon:
                # Fixed-horizon backstop: this block must be issued, but a
                # backstop alone does not justify a deep batch.
                backstopped.add(disk)
            if count * estimates[disk] > distance:
                triggered.add(disk)
            else:
                slack = distance - count * estimates[disk]
                if min_slack is None or slack < min_slack:
                    min_slack = slack
            if len(triggered) == num_disks:
                break
        return triggered, backstopped, min_slack, first_distance

    def _survey_vector(
        self,
        cursor: int,
        estimates: List[float],
        arrays: Tuple[Any, Any],
    ) -> Tuple[Set[int], Set[int], Optional[float], Optional[int]]:
        """Vectorized :meth:`_survey_scalar`, bit-identical by construction.

        The tracker keeps each disk's pending positions as their own sorted
        subsequence, so the i-th entry's rank on its disk is simply ``i+1``
        — no rank bookkeeping.  Per disk with distances ``d_1 <= d_2 <= ...``
        the trigger is the first ``i`` with ``i * F' > d_i``; the backstop
        checks ``d_i <= H`` at or before the trigger entry, and since the
        first entry is the nearest, that reduces to ``d_1 <= H``; slack
        accumulates strictly before the trigger.  All arithmetic is int64 ->
        float64 (exact below 2**53), term-for-term the scalar int*float
        semantics; folding per-disk slack minima into a global minimum is
        order-independent, and the scalar loop's all-disks-triggered early
        exit only skips bookkeeping that cannot change the outputs.

        ``arrays`` is the tracker's live (positions, disks) mirror view —
        non-empty by the caller's eligibility check, and not mutated here.
        """
        triggered: Set[int] = set()
        backstopped: Set[int] = set()
        min_slack: Optional[float] = None
        first_distance = int(arrays[0][0]) - cursor
        tracker = self._tracker
        horizon = self.horizon
        ranks = self._rank1_buf
        for disk, est in enumerate(estimates):
            pos_d = tracker.disk_view(disk, cursor)
            m = pos_d.shape[0]
            if m == 0:
                continue
            if int(pos_d[0]) - cursor <= horizon:
                backstopped.add(disk)
            if m > ranks.shape[0]:
                size = max(m, 2 * ranks.shape[0])
                ranks = self._rank1_buf = _np.arange(1, size + 1, dtype=_np.int64)
            # ``slack < 0`` and the scalar's ``i * F' > d_i`` are the same
            # float64 predicate (the correctly-rounded difference of these
            # magnitudes never rounds a nonzero value to zero), so one
            # slack vector serves both the trigger test and the memo min.
            slack = (pos_d - cursor) - ranks[:m] * est
            low = slack.min()
            if low >= 0.0:  # common case: nothing fired, every entry counts
                low_f = float(low)
                if min_slack is None or low_f < min_slack:
                    min_slack = low_f
                continue
            triggered.add(disk)
            trigger = int((slack < 0.0).argmax())  # first over entry
            if trigger:
                pre = float(slack[:trigger].min())
                if min_slack is None or pre < min_slack:
                    min_slack = pre
        return triggered, backstopped, min_slack, first_distance

    def _issue_batches(
        self,
        cursor: int,
        disks: Collection[int],
        backstop_disks: Collection[int] = (),
        arrays: Optional[Tuple[Any, Any]] = None,
    ) -> None:
        """Aggressive-style batch fill restricted to the triggered disks.

        ``backstop_disks`` fired only the fixed-horizon rule: they issue
        just the missing blocks within the horizon (fixed horizon's own
        behaviour), not a deep batch.  ``arrays`` is the caller's pending
        mirror view (from the survey at the same cursor, with no mutation
        in between); the active set is materialized from it before the
        first issue invalidates the view.
        """
        sim = self.sim
        budgets = {disk: self.batch_size for disk in sorted(disks)}
        horizon_end = cursor + self.horizon
        tracker = self._tracker
        if arrays is not None:
            # Keep exactly the entries the scalar walk could act on; all
            # others are pure no-ops in this loop, so dropping them is
            # output-neutral.  A budgeted disk's entries beyond its first
            # ``batch_size`` cannot issue (each earlier one either issued
            # and decremented the budget, or broke out of the loop), and a
            # backstop-only disk acts solely inside the horizon.  Each
            # disk's candidates are a prefix of its per-disk subsequence;
            # re-sorting the union restores the scalar walk's global
            # position order, and the materialized list is the snapshot
            # copy the scalar walk would have made.
            chosen = [
                tracker.disk_view(disk, cursor)[:budget]
                for disk, budget in budgets.items()
            ]
            for disk in backstop_disks:
                if disk not in budgets:
                    view = tracker.disk_view(disk, cursor)
                    k = int(view.searchsorted(horizon_end, side="right"))
                    chosen.append(view[:k])
            if len(chosen) == 1:
                active = chosen[0]
            else:
                active = _np.sort(_np.concatenate(chosen))
            all_blocks = sim.blocks
            walk_iter: Iterable[Tuple[int, int, Optional[int]]] = [
                (position, all_blocks[position], disk)
                for position, disk in zip(
                    active.tolist(), tracker._disk_by_pos[active].tolist()
                )
            ]
        else:
            walk_iter = (
                (position, block, None)
                for position, block in tracker.walk(cursor, snapshot=True)
            )
        for position, block, known_disk in walk_iter:
            disk = sim.disk_of(block) if known_disk is None else known_disk
            budget = budgets.get(disk)
            if budget is None:
                if disk in backstop_disks and position <= horizon_end:
                    victim = self._victim_for(cursor, position)
                    if victim is False:
                        break
                    self.issue(block, victim)
                continue
            if budget == 0:
                if all(b == 0 for b in budgets.values()) and not backstop_disks:
                    break
                continue
            victim = self._victim_for(cursor, position)
            if victim is False:
                break
            self.issue(block, victim)
            budgets[disk] = budget - 1

    def _victim_for(self, cursor: int, fetch_position: int) -> Victim:
        sim = self.sim
        if sim.cache.free_buffers > 0:
            return None
        victim = sim.eviction_heap.best_victim(
            cursor, exclude=sim.protected_blocks()
        )
        if victim is None:
            return False
        # next_use == index.never exceeds any real fetch position, so
        # never-again blocks stay evictable with one exact comparison.
        if sim.index.next_use(victim, cursor) <= fetch_position:
            return False
        return victim

#!/usr/bin/env python
"""CI smoke check for the supervised runner (docs/RUNNER.md).

Starts the 14 golden cells (tests/test_golden_results.py) on a two-worker
supervised pool in a subprocess, SIGTERMs it once a few cells have landed
in the journal, resumes the interrupted run, and asserts that the union
of result digests is exactly the pinned golden set — i.e. interrupting
and resuming a parallel sweep is bit-identical to an uninterrupted
serial run.

Usage::

    PYTHONPATH=src python scripts/runner_smoke.py --journal runs/ci-smoke

Exit status: 0 on bit-identity, 1 on any mismatch or unexpected child
exit.  The journal directory is left in place for artifact upload.
"""

import argparse
import os
import signal
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (REPO, os.path.join(REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.runner import Journal, run_plan  # noqa: E402
from repro.runner.runner import EXIT_INTERRUPTED, EXIT_OK  # noqa: E402
from tests.test_golden_results import CELLS, EXPECTED, cell_id  # noqa: E402
from tests.test_runner import golden_plan  # noqa: E402


def child(journal_dir: str, jobs: int) -> int:
    report = run_plan(golden_plan(), journal_dir=journal_dir, jobs=jobs)
    return report.exit_code


def parent(journal_dir: str, jobs: int) -> int:
    proc = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child",
         "--journal", journal_dir, "--jobs", str(jobs)],
        cwd=REPO,
    )
    journal = Journal(journal_dir)
    deadline = time.monotonic() + 300.0
    while time.monotonic() < deadline and proc.poll() is None:
        if len(journal.completed()) >= 2:
            break
        time.sleep(0.1)
    print(f"smoke: SIGTERM after {len(journal.completed())} journaled cells")
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=300.0)

    interrupted = len(journal.completed())
    if proc.returncode == EXIT_INTERRUPTED:
        print(f"smoke: child drained and exited {EXIT_INTERRUPTED} "
              f"with {interrupted}/{len(CELLS)} cells journaled")
    elif proc.returncode == EXIT_OK and interrupted == len(CELLS):
        print("smoke: child finished before the signal (fast machine); "
              "resume will be a pure skip")
    else:
        print(f"smoke: FAIL — child exited {proc.returncode} "
              f"with {interrupted} cells journaled")
        return 1

    report = run_plan(
        golden_plan(), journal_dir=journal_dir, jobs=jobs, resume=True,
        install_signal_handlers=False,
    )
    print(f"smoke: resume skipped {report.skipped}, "
          f"ran {report.completed - report.skipped}, "
          f"exit {report.exit_code}")
    if report.exit_code != EXIT_OK:
        print("smoke: FAIL — resumed run did not complete cleanly")
        return 1

    failures = 0
    for golden_cell, cell in zip(CELLS, golden_plan()):
        key = cell_id(golden_cell)
        got = report.digests.get(cell.config_hash)
        if got != EXPECTED[key]:
            failures += 1
            print(f"smoke: MISMATCH {key}: {got} != {EXPECTED[key]}")
    if failures:
        print(f"smoke: FAIL — {failures}/{len(CELLS)} digests diverged")
        return 1
    print(f"smoke: OK — all {len(CELLS)} interrupted+resumed digests "
          "bit-identical to the pinned serial golden values")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--journal", default="runs/ci-smoke")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        return child(args.journal, args.jobs)
    return parent(args.journal, args.jobs)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI soak smoke for the hardened service tier (docs/SERVICE.md,
"Overload and hostile networks").

Starts ``repro.cli serve`` in a subprocess, puts a seeded
:class:`repro.svc.netchaos.ChaosProxy` in front of it (connection
resets + slowloris drip-feeds + throttled writes), and drives the
open-loop load generator through the proxy with a mix of compute and
read traffic drawn from the 14 golden cells.

The run passes only if every soak invariant holds:

1. **Correctness** — no config hash ever shows two digests, and every
   digest observed equals the pinned golden value
   (tests/test_golden_results.py): chaos may slow or sever requests but
   never corrupt a result.
2. **Reproducibility** — the loadgen plan fingerprint and the chaos
   fault fingerprint (plan counts) replay identically from their seeds.
3. **Connection hygiene** — every connection the proxy opened is closed
   again; the proxy drains to zero open connections.
4. **Bounded memory** — server RSS after the soak stays within a fixed
   budget of its pre-soak baseline (protocol limits mean no request can
   buffer unboundedly).
5. **Live telemetry** — the Prometheus exposition stays structurally
   valid before, during, and after the soak, and the request counter is
   monotone across scrapes.
6. **Shaped overload** — no 5xx from resource exhaustion; refusals (if
   any) are 4xx with Retry-After.

Artifacts (uploaded by the ``soak-smoke`` CI job): the loadgen JSON
report and the final Prometheus scrape, written next to the store.

Usage::

    PYTHONPATH=src python scripts/soak_smoke.py --store runs/soak-store

Exit status: 0 on success, 1 on any violated invariant.
"""

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (REPO, os.path.join(REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.loadgen import LoadgenConfig, build_plan, run_loadgen  # noqa: E402
from repro.obs.prom import validate_exposition  # noqa: E402
from repro.svc.netchaos import ChaosProxy, NetChaosSchedule  # noqa: E402
from repro.svc.service import cell_from_spec  # noqa: E402

from tests.test_golden_results import CELLS, EXPECTED, SCALE, cell_id  # noqa: E402

#: The seeded hostile network: ~15% mid-body resets, ~10% slowloris
#: drip-feeds, ~15% throttled connections, plus jittered latency.
CHAOS = NetChaosSchedule(
    seed=1996, reset_fraction=0.15, slowloris_fraction=0.10,
    throttle_fraction=0.15, latency_ms=1.0, jitter_ms=4.0,
    reset_after_bytes=200, throttle_bytes_per_s=131072.0,
    chunk_bytes=1024, drip_chunk_bytes=48, drip_delay_ms=2.0,
)

LOADGEN_SEED = 1996
RATE_PER_S = 25.0
DURATION_S = 8.0
#: RSS growth budget across the soak (generous: the point is to catch
#: unbounded buffering, not allocator noise).
RSS_BUDGET_BYTES = 200 * 1024 * 1024


def golden_specs():
    specs = []
    for trace, policy, disks, discipline, timeline in CELLS:
        spec = {
            "trace": trace, "policy": policy, "disks": disks,
            "scale": SCALE, "discipline": discipline,
            "scaled_defaults": False,
        }
        if timeline:
            spec["config_overrides"] = {"record_timeline": True}
        specs.append(spec)
    return specs


def expected_by_hash(specs):
    """config hash → pinned golden digest, for the soak's digest ledger."""
    mapping = {}
    for golden_cell, spec in zip(CELLS, specs):
        mapping[cell_from_spec(spec).config_hash] = EXPECTED[cell_id(golden_cell)]
    return mapping


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def api(port: int, method: str, path: str, body=None, timeout_s=300.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=None if body is None else json.dumps(body).encode(),
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return response.status, json.loads(response.read())


def api_text(port: int, path: str, timeout_s=10.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers={"Accept": "text/plain"})
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return response.status, response.read().decode("utf-8")


def start_server(port: int, store: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--store", store, "--jobs", "2", "--trace",
         "--request-timeout-s", "600",
         "--header-timeout-s", "5", "--body-timeout-s", "15"],
        cwd=REPO, env=dict(os.environ, PYTHONPATH="src"),
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died at startup: {proc.returncode}")
        try:
            status, _ = api(port, "GET", "/v1/healthz", timeout_s=2.0)
            if status == 200:
                return proc
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise RuntimeError("server never became healthy")


def rss_bytes(pid: int) -> int:
    with open(f"/proc/{pid}/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return -1


def prometheus_counter(text: str, name: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


async def run_soak(server_port: int):
    """The chaos-proxied loadgen run; returns (report, proxy counters)."""
    proxy = ChaosProxy("127.0.0.1", server_port, CHAOS)
    await proxy.start()
    try:
        config = LoadgenConfig(
            port=proxy.bound_port, rate_per_s=RATE_PER_S,
            duration_s=DURATION_S, seed=LOADGEN_SEED,
            mix={"cells": 0.4, "results": 0.35, "status": 0.15,
                 "metrics": 0.1},
            specs=golden_specs(), timeout_s=120.0,
        )
        report = await run_loadgen(config)
        # Connection hygiene: the proxy must drain to zero.
        for _ in range(200):
            if proxy.open_connections == 0:
                break
            await asyncio.sleep(0.05)
        return report, dict(proxy.counters), proxy.open_connections
    finally:
        await proxy.stop()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="runs/soak-store")
    args = parser.parse_args()
    store = os.path.abspath(args.store)
    artifact_dir = os.path.dirname(store) or "."
    os.makedirs(artifact_dir, exist_ok=True)
    port = free_port()
    specs = golden_specs()
    golden_by_hash = expected_by_hash(specs)

    server = start_server(port, store)
    failures = []
    try:
        # -- warm the store: the golden sweep, chaos-free ---------------
        status, sweep = api(port, "POST", "/v1/sweeps", {"cells": specs})
        if status != 200:
            print(f"soak: FAIL — golden sweep returned {status}")
            return 1
        for golden_cell, entry in zip(CELLS, sweep["cells"]):
            key = cell_id(golden_cell)
            if entry.get("digest") != EXPECTED[key]:
                failures.append(
                    f"pre-soak digest mismatch {key}: "
                    f"{entry.get('digest')} != {EXPECTED[key]}"
                )
        print(f"soak: golden sweep computed "
              f"{sweep['counts']['computed']} cells, "
              f"{sweep['counts']['store']} from store")

        # -- baseline telemetry and memory ------------------------------
        scrape_status, scrape_before = api_text(port, "/v1/metrics")
        if scrape_status != 200 or validate_exposition(scrape_before):
            failures.append("pre-soak Prometheus scrape invalid")
        requests_before = prometheus_counter(
            scrape_before, "repro_svc_requests_total")
        rss_before = rss_bytes(server.pid)
        print(f"soak: pre-soak RSS {rss_before // (1024 * 1024)} MiB")

        # -- the seeded hostile-network soak ----------------------------
        print(f"soak: driving {RATE_PER_S:g} req/s for {DURATION_S:g}s "
              f"through chaos seed {CHAOS.seed} "
              f"(plan {CHAOS.plan_counts(200)})")
        report, proxy_counters, still_open = asyncio.run(run_soak(port))

        # 1. Correctness: digest ledger against the pinned goldens.
        if report["digest_conflicts"]:
            failures.append(
                f"digest conflicts: {report['digest_conflicts']}")
        for config_hash, digests in report["digests"].items():
            expected = golden_by_hash.get(config_hash)
            if expected is None:
                failures.append(f"unexpected config hash {config_hash}")
            elif digests != [expected]:
                failures.append(
                    f"digest mismatch for {config_hash}: "
                    f"{digests} != [{expected}]"
                )

        # 2. Reproducibility: both seeds replay byte-identically.
        _, fingerprint = build_plan(LoadgenConfig(
            port=1, rate_per_s=RATE_PER_S, duration_s=DURATION_S,
            seed=LOADGEN_SEED,
            mix={"cells": 0.4, "results": 0.35, "status": 0.15,
                 "metrics": 0.1},
            specs=golden_specs(), timeout_s=120.0,
        ))
        if report["plan"]["fingerprint"] != fingerprint:
            failures.append("loadgen plan fingerprint not reproducible")
        connections = proxy_counters["connections"]
        replayed = NetChaosSchedule(**CHAOS.to_dict()).plan_counts(connections)
        live = {
            "drop": proxy_counters["dropped"],
            "reset": proxy_counters["reset"],
            "slowloris": proxy_counters["slowloris"],
            "throttle": proxy_counters["throttled"],
            "latency": proxy_counters["latency"],
            "clean": proxy_counters["clean"],
        }
        live = {kind: count for kind, count in live.items() if count}
        if live != replayed:
            failures.append(
                f"chaos fingerprint diverged: injected {live}, "
                f"replayed {replayed}"
            )

        # 3. Connection hygiene.
        if still_open != 0:
            failures.append(f"{still_open} proxied connections never closed")
        if proxy_counters["closed"] != proxy_counters["connections"]:
            failures.append(
                f"closed {proxy_counters['closed']} != "
                f"opened {proxy_counters['connections']}"
            )

        # 4. Bounded memory.
        rss_after = rss_bytes(server.pid)
        print(f"soak: post-soak RSS {rss_after // (1024 * 1024)} MiB")
        if rss_after - rss_before > RSS_BUDGET_BYTES:
            failures.append(
                f"RSS grew {(rss_after - rss_before) // (1024 * 1024)} MiB "
                f"over the soak (budget "
                f"{RSS_BUDGET_BYTES // (1024 * 1024)} MiB)"
            )

        # 5. Telemetry: valid exposition, monotone counters.
        scrape_status, scrape_after = api_text(port, "/v1/metrics")
        errors = validate_exposition(scrape_after)
        if scrape_status != 200 or errors:
            failures.append(f"post-soak Prometheus scrape invalid: {errors}")
        requests_after = prometheus_counter(
            scrape_after, "repro_svc_requests_total")
        if requests_after < requests_before:
            failures.append(
                f"request counter not monotone: "
                f"{requests_after} < {requests_before}"
            )

        # 6. Shaped overload: no 5xx, refusals carry Retry-After.
        fives = {status: count
                 for status, count in report["status_counts"].items()
                 if status.startswith("5")}
        if fives:
            failures.append(f"5xx under soak: {fives}")
        shed_total = sum(report["shed"].values())
        if shed_total and not report["retry_after_present"]:
            failures.append("shed responses carried no Retry-After")

        # -- artifacts ---------------------------------------------------
        report_path = os.path.join(artifact_dir, "soak-loadgen-report.json")
        with open(report_path, "w") as handle:
            json.dump({"report": report, "proxy": proxy_counters},
                      handle, indent=2, sort_keys=True)
        scrape_path = os.path.join(artifact_dir, "soak-prometheus.txt")
        with open(scrape_path, "w") as handle:
            handle.write(scrape_after)
        print(f"soak: wrote {report_path} and {scrape_path}")

        answered = sum(report["status_counts"].values())
        errored = sum(report["errors"].values())
        print(f"soak: {report['plan']['arrivals']} arrivals, "
              f"{answered} answered, {errored} severed by chaos, "
              f"shed {report['shed']}, proxy {proxy_counters}")

        if failures:
            for failure in failures:
                print(f"soak: FAIL — {failure}")
            return 1
        print("soak: OK — digests golden, fingerprints reproduced, "
              "connections drained, RSS bounded, telemetry monotone")
        return 0
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI chaos smoke check for the simulation service (docs/SERVICE.md).

Starts ``repro.cli serve`` in a subprocess, submits the 14 golden cells
(tests/test_golden_results.py) as one sweep over real HTTP, and attacks
the run while it is in flight:

1. SIGKILLs a forked pool worker mid-cell (the supervisor must retry);
2. SIGKILLs the *server process itself* once a few results are resident
   in the content-addressed store (no drain, no cleanup).

It then restarts the server over the same store directory and submits
the identical sweep.  The check passes only if every one of the 14
digests equals the pinned golden value — i.e. results computed before,
during, and after the chaos all agree bit-for-bit with an undisturbed
serial run — and a third identical sweep is served entirely from the
store (hit ratio 1.0, zero simulation work).

The servers run with ``--trace``, so the smoke also covers the
telemetry tier (docs/OBSERVABILITY.md, "Service telemetry"): it scrapes
``/v1/metrics`` as Prometheus text mid-sweep and fails on any
``validate_exposition`` error, and before shutting down it downloads
``GET /v1/trace`` — asserting service spans and re-homed simulation
rows share a correlation ID — and writes the merged Perfetto document
next to the store for artifact upload.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py --store runs/chaos-store

Exit status: 0 on success, 1 on any divergence or unexpected server
behaviour.  The store directory (results + append-only log) is left in
place for artifact upload.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (REPO, os.path.join(REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from tests.test_golden_results import CELLS, EXPECTED, SCALE, cell_id  # noqa: E402


def golden_specs():
    specs = []
    for trace, policy, disks, discipline, timeline in CELLS:
        spec = {
            "trace": trace, "policy": policy, "disks": disks,
            "scale": SCALE, "discipline": discipline,
            "scaled_defaults": False,
        }
        if timeline:
            spec["config_overrides"] = {"record_timeline": True}
        specs.append(spec)
    return specs


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def api(port: int, method: str, path: str, body=None, timeout_s=300.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=None if body is None else json.dumps(body).encode(),
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return response.status, json.loads(response.read())


def api_text(port: int, path: str, accept="text/plain", timeout_s=10.0):
    """GET a non-JSON body (the Prometheus exposition)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers={"Accept": accept})
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return (response.status, response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def start_server(port: int, store: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--store", store, "--jobs", "2", "--trace",
         "--request-timeout-s", "600"],
        cwd=REPO, env=dict(os.environ, PYTHONPATH="src"),
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died at startup: {proc.returncode}")
        try:
            status, _ = api(port, "GET", "/v1/healthz", timeout_s=2.0)
            if status == 200:
                return proc
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise RuntimeError("server never became healthy")


def child_pids(pid: int):
    """Forked pool workers of the server (Linux /proc).

    Workers are forked from the service's pool *thread*, so they appear
    under that thread's task entry — scan every task of the process.
    """
    pids = []
    try:
        tasks = os.listdir(f"/proc/{pid}/task")
    except OSError:
        return pids
    for tid in tasks:
        try:
            with open(f"/proc/{pid}/task/{tid}/children") as handle:
                pids.extend(int(token) for token in handle.read().split())
        except OSError:
            continue
    return pids


def prometheus_scrape_errors(port: int):
    """Scrape ``/v1/metrics`` as Prometheus text and structurally
    validate it (line grammar, ``+Inf`` buckets, monotonicity)."""
    from repro.obs.prom import validate_exposition

    status, content_type, text = api_text(port, "/v1/metrics")
    errors = []
    if status != 200:
        errors.append(f"scrape status {status}")
    if not content_type.startswith("text/plain; version=0.0.4"):
        errors.append(f"unexpected content type {content_type!r}")
    errors.extend(validate_exposition(text))
    if "repro_svc_requests_total" not in text:
        errors.append("repro_svc_requests_total missing from exposition")
    return errors


def check_trace_document(port: int, store: str, expect_sim_rows: bool):
    """Download ``GET /v1/trace``, verify service spans and (when any
    cell was actually computed this incarnation) simulation rows linked
    by correlation ID, and write the document next to the store for
    artifact upload.  Returns a list of error strings."""
    status, document = api(port, "GET", "/v1/trace", timeout_s=30.0)
    if status != 200:
        return [f"/v1/trace returned {status}"]
    rows = [event for event in document.get("traceEvents", [])
            if event.get("ph") == "X"]
    svc_rows = [row for row in rows if row.get("pid") == 1]
    sim_rows = [row for row in rows if row.get("pid", 0) >= 100]
    errors = []
    if not svc_rows:
        errors.append("trace document has no service spans")
    if expect_sim_rows and not sim_rows:
        errors.append("trace document has no simulation rows despite "
                      "computed cells")
    if sim_rows and svc_rows:
        sim_ids = {row.get("args", {}).get("corr_id") for row in sim_rows}
        svc_ids = {row.get("args", {}).get("corr_id") for row in svc_rows}
        if not (sim_ids & svc_ids):
            errors.append("no correlation ID shared between service "
                          "spans and simulation rows")
    path = os.path.join(os.path.dirname(store), "chaos-service-trace.json")
    with open(path, "w") as handle:
        json.dump(document, handle)
    print(f"chaos: wrote merged Perfetto trace ({len(svc_rows)} service "
          f"spans, {len(sim_rows)} simulation rows) to {path}")
    return errors


def resident(port: int) -> int:
    try:
        _, payload = api(port, "GET", "/v1/store", timeout_s=2.0)
        return payload["resident"]
    except (urllib.error.URLError, OSError, KeyError):
        return -1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="runs/chaos-store")
    args = parser.parse_args()
    store = os.path.abspath(args.store)
    port = free_port()
    specs = golden_specs()

    # -- round 1: sweep under fire --------------------------------------
    server = start_server(port, store)
    sweep_error = []

    def submit():
        try:
            api(port, "POST", "/v1/sweeps", {"cells": specs})
        except Exception as exc:  # the SIGKILL below makes this expected
            sweep_error.append(exc)

    sweeper = threading.Thread(target=submit, daemon=True)
    sweeper.start()

    # Kill a forked pool worker as soon as one exists — workers are
    # prestarted, so this lands while the sweep is (or is about to be)
    # in flight and forces the supervisor down the crash/retry path.
    deadline = time.monotonic() + 120.0
    killed_worker = False
    while time.monotonic() < deadline and sweeper.is_alive():
        workers = child_pids(server.pid)
        if workers:
            try:
                os.kill(workers[0], signal.SIGKILL)
                killed_worker = True
                print(f"chaos: SIGKILLed pool worker {workers[0]}")
            except OSError:
                continue
            break
        time.sleep(0.01)

    # Scrape the Prometheus exposition mid-sweep — the text endpoint
    # must stay structurally valid while the pool is computing and the
    # supervisor is replacing the worker we just killed.
    scrape_errors = prometheus_scrape_errors(port)
    if scrape_errors:
        for error in scrape_errors:
            print(f"chaos: FAIL — prometheus scrape: {error}")
        server.send_signal(signal.SIGKILL)
        return 1
    print("chaos: mid-sweep /v1/metrics scrape is valid Prometheus "
          "exposition")

    # SIGKILL the server itself once a few results are resident — no
    # drain, no atexit, nothing: the store log is all that survives.
    # On a fast machine the sweep may finish first; the kill still
    # exercises an undrained death and the restart-over-store path.
    while time.monotonic() < deadline and sweeper.is_alive():
        count = resident(port)
        if count >= 2 or server.poll() is not None:
            break
        time.sleep(0.01)
    survivors = resident(port)
    server.send_signal(signal.SIGKILL)
    server.wait(timeout=60.0)
    sweeper.join(timeout=60.0)
    print(f"chaos: SIGKILLed server mid-sweep with ~{survivors} results "
          f"resident (worker killed: {killed_worker})")

    # -- round 2: restart over the same store, finish the sweep ---------
    server = start_server(port, store)
    try:
        status, first = api(port, "POST", "/v1/sweeps", {"cells": specs})
        if status != 200:
            print(f"chaos: FAIL — post-restart sweep returned {status}")
            return 1
        counts = first["counts"]
        print(f"chaos: post-restart sweep served {counts['store']} from the "
              f"store, computed {counts['computed']}"
              f" (+{counts['coalesced']} coalesced)")
        failures = 0
        by_position = first["cells"]
        for golden_cell, entry in zip(CELLS, by_position):
            key = cell_id(golden_cell)
            if entry.get("digest") != EXPECTED[key]:
                failures += 1
                print(f"chaos: MISMATCH {key}: "
                      f"{entry.get('digest')} != {EXPECTED[key]}")
        if failures:
            print(f"chaos: FAIL — {failures}/{len(CELLS)} digests diverged "
                  "after worker+server kills")
            return 1

        # -- round 3: the identical sweep must be pure store ------------
        status, again = api(port, "POST", "/v1/sweeps", {"cells": specs})
        counts = again["counts"]
        if counts["store"] != len(CELLS) or counts["computed"] != 0:
            print(f"chaos: FAIL — repeat sweep not served from store: "
                  f"{counts}")
            return 1
        for before, after in zip(by_position, again["cells"]):
            if before["digest"] != after["digest"]:
                print("chaos: FAIL — store hit differs from computed record")
                return 1
        # -- telemetry: merged Perfetto trace from the live server ------
        trace_errors = check_trace_document(
            port, store, expect_sim_rows=first["counts"]["computed"] > 0)
        if trace_errors:
            for error in trace_errors:
                print(f"chaos: FAIL — trace: {error}")
            return 1

        print(f"chaos: OK — all {len(CELLS)} digests bit-identical to the "
              "pinned golden values; repeat sweep hit ratio 1.0 with zero "
              "simulation work")
        return 0
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
